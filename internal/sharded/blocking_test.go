package sharded

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfq/internal/waiter"
)

func TestTrackedEnqueueFailsAfterClose(t *testing.T) {
	q := New[int](4, 2)
	if _, err := q.TryEnqueueTicket(0, 1); err != nil {
		t.Fatalf("open TryEnqueueTicket: %v", err)
	}
	if _, err := q.TryEnqueueBatch(0, []int{2, 3}); err != nil {
		t.Fatalf("open TryEnqueueBatch: %v", err)
	}
	if err := q.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := q.TryEnqueueTicket(0, 4); !errors.Is(err, waiter.ErrClosed) {
		t.Fatalf("closed TryEnqueueTicket: %v", err)
	}
	if _, err := q.TryEnqueueBatch(0, []int{5}); !errors.Is(err, waiter.ErrClosed) {
		t.Fatalf("closed TryEnqueueBatch: %v", err)
	}
	if err := q.TryEnqueue(0, 6); !errors.Is(err, waiter.ErrClosed) {
		t.Fatalf("closed TryEnqueue: %v", err)
	}
}

// TestDrainedProgression: Drained flips only after EVERY shard has been
// observed empty post-quiescence, and the pre-close elements come out
// first.
func TestDrainedProgression(t *testing.T) {
	q := New[int](2, 2)
	for i := 1; i <= 4; i++ {
		if _, err := q.TryEnqueueTicket(0, i); err != nil {
			t.Fatal(err)
		}
	}
	if q.Drained() {
		t.Fatal("Drained true before close")
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if q.Drained() {
		t.Fatal("Drained true with elements pending")
	}
	ctx := context.Background()
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		v, err := q.DequeueCtx(ctx, 1)
		if err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	if _, err := q.DequeueCtx(ctx, 1); !errors.Is(err, waiter.ErrClosed) {
		t.Fatalf("post-drain DequeueCtx: %v, want ErrClosed", err)
	}
	if !q.Drained() {
		t.Fatal("Drained false after full drain")
	}
}

// TestPerShardFIFOPreservedThroughDrain: the close-driven drain must not
// reorder any shard's elements — ticket order within a shard is FIFO all
// the way out.
func TestPerShardFIFOPreservedThroughDrain(t *testing.T) {
	const nshards = 4
	q := New[uint64](2, nshards)
	var byShard [nshards][]uint64
	for i := uint64(0); i < 64; i++ {
		tkt, err := q.TryEnqueueTicket(0, i)
		if err != nil {
			t.Fatal(err)
		}
		byShard[tkt%nshards] = append(byShard[tkt%nshards], i)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	// Single drainer: every per-shard subsequence must come out in order.
	var got []uint64
	ctx := context.Background()
	for {
		v, err := q.DequeueCtx(ctx, 1)
		if err != nil {
			if !errors.Is(err, waiter.ErrClosed) {
				t.Fatal(err)
			}
			break
		}
		got = append(got, v)
	}
	if len(got) != 64 {
		t.Fatalf("drained %d of 64", len(got))
	}
	pos := map[uint64]int{}
	for i, v := range got {
		pos[v] = i
	}
	for s, vals := range byShard {
		for i := 1; i < len(vals); i++ {
			if pos[vals[i-1]] > pos[vals[i]] {
				t.Fatalf("shard %d: %d drained after %d", s, vals[i-1], vals[i])
			}
		}
	}
}

// TestMultiConsumerCloseDrainTerminates is the shared-drain-mask
// regression: several blocking consumers interleaving over a multi-shard
// queue must ALL terminate with ErrClosed after the elements run out —
// even though each individual consumer may never personally observe
// every shard empty (another consumer's miss counts for it).
func TestMultiConsumerCloseDrainTerminates(t *testing.T) {
	const consumers, nshards, elems = 4, 8, 2000
	q := New[int](consumers+1, nshards)
	for i := 0; i < elems; i++ {
		if _, err := q.TryEnqueueTicket(consumers, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				_, err := q.DequeueCtx(context.Background(), tid)
				if err != nil {
					if !errors.Is(err, waiter.ErrClosed) {
						t.Errorf("consumer %d: %v", tid, err)
					}
					return
				}
				delivered.Add(1)
			}
		}(c)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("drain did not terminate: consumers hung on a closed empty queue")
	}
	if delivered.Load() != elems {
		t.Fatalf("delivered %d of %d", delivered.Load(), elems)
	}
	if !q.Drained() {
		t.Fatal("Drained false after all consumers exited")
	}
}
