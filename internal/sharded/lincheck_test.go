package sharded

import (
	"sync"
	"testing"

	"wfq/internal/core"
	"wfq/internal/lincheck"
	"wfq/internal/xrand"
)

// recordShardedHistory drives threads workers over q with a seeded random
// mix of single enqueues, single dequeues, and batch enqueues, tagging
// every recorded operation with the shard its dispatch ticket named.
// Batch elements are recorded as k individual enqueues whose intervals
// all span the batch call — semantically exact, since the batch IS k
// consecutive-ticket enqueues. Batch dequeues are not recorded: their
// compaction hides which tickets were burned, so per-element shards are
// unobservable; the fuzz differential covers them instead.
func recordShardedHistory(q *Queue[int64], threads, ops int, seed uint64) []lincheck.Op {
	nsh := uint64(q.Shards())
	rec := lincheck.NewRecorder(threads, 2*ops)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := xrand.New(seed*1_000_003 + uint64(tid))
			for i := 0; i < ops; i++ {
				switch rng.Next() % 4 {
				case 0, 1: // single enqueue
					v := int64(tid)<<32 | int64(i)
					tok := rec.BeginEnq(tid, v)
					ticket := q.EnqueueTicket(tid, v)
					rec.SetShard(tok, int(ticket%nsh))
					rec.EndEnq(tok)
				case 2: // single dequeue
					tok := rec.BeginDeq(tid)
					v, ok, ticket := q.DequeueTicket(tid)
					rec.SetShard(tok, int(ticket%nsh))
					rec.EndDeq(tok, v, ok)
				default: // batch enqueue of 2..4
					k := int(rng.Next()%3) + 2
					vs := make([]int64, k)
					toks := make([]lincheck.Token, k)
					for j := range vs {
						vs[j] = int64(tid)<<32 | int64(i)<<8 | int64(j) | 1<<62
						toks[j] = rec.BeginEnq(tid, vs[j])
					}
					first := q.EnqueueBatch(tid, vs)
					for j := range vs {
						rec.SetShard(toks[j], int((first+uint64(j))%nsh))
						rec.EndEnq(toks[j])
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return rec.History()
}

// TestShardedHistoriesLinearizable is the acceptance lincheck: genuinely
// concurrent histories from the 8-shard frontend at 8 threads (the
// issue's 8×8 configuration, run under -race by scripts/check.sh) must
// linearize against the bag-of-FIFOs specification — every per-shard
// subhistory FIFO-linearizable, with empty results judged against the
// claiming shard only. Both the fast-path GC build and a mixed
// fast/HP/plain shard set are covered.
func TestShardedHistoriesLinearizable(t *testing.T) {
	const threads, shards, ops, rounds = 8, 8, 10, 8
	builders := map[string]func() *Queue[int64]{
		"fast-uniform": func() *Queue[int64] {
			return New[int64](threads, shards, core.WithFastPath(0))
		},
		"mixed": func() *Queue[int64] {
			sh := make([]Shard[int64], shards)
			for i := range sh {
				switch i % 3 {
				case 0:
					sh[i] = core.New[int64](threads, core.WithFastPath(0))
				case 1:
					sh[i] = core.NewHP[int64](threads, 0, 0)
				default:
					sh[i] = core.New[int64](threads, core.WithVariant(core.VariantOpt12))
				}
			}
			return NewOf[int64](threads, sh)
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			for r := 0; r < rounds; r++ {
				hist := recordShardedHistory(build(), threads, ops, uint64(r)+1)
				var c lincheck.Checker
				res, err := c.CheckSharded(hist)
				if err != nil {
					t.Fatal(err)
				}
				if res == lincheck.NotLinearizable {
					t.Fatalf("round %d: history not linearizable under the sharded spec:\n%v", r, hist)
				}
			}
		})
	}
}
