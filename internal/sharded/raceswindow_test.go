package sharded

import (
	"sync"
	"testing"
	"time"

	"wfq/internal/yield"
)

// TestEnqueueTicketHandoffWindow forces the enqueue-side handoff race the
// package doc reasons about: an enqueuer that performed its ticket
// fetch-and-add and stalled before the shard append. The ticket is spoken
// for, but no element is visible, so a dequeuer dispatched to the same
// shard legitimately reports empty — and the whole frontend must stay
// unblocked (no other operation waits on the parked enqueuer). The value
// surfaces for the next same-residue dequeue ticket after the append.
func TestEnqueueTicketHandoffWindow(t *testing.T) {
	const enq, deq = 0, 1
	q := New[int64](2, 2)

	parked := make(chan struct{})
	resume := make(chan struct{})
	var once sync.Once
	prev := yield.Set(func(p yield.Point, caller, owner int) {
		if p == yield.SHEnqTicket && caller == enq {
			once.Do(func() {
				if owner != 0 {
					t.Errorf("ticket 0 dispatched to shard %d", owner)
				}
				close(parked)
				<-resume
			})
		}
	})
	defer yield.Set(prev)

	done := make(chan struct{})
	go func() {
		q.Enqueue(enq, 42) // ticket 0 -> shard 0; parks before the append
		close(done)
	}()
	<-parked

	// The dequeuer's ticket 0 names shard 0 — the enqueuer's shard — but
	// the append has not happened: empty is the correct answer, and the
	// probe must return despite the parked enqueuer (wait-freedom of the
	// dispatch: no cross-shard rescan, no waiting on the ticket holder).
	if _, ok, ticket := q.DequeueTicket(deq); ok || ticket != 0 {
		t.Fatalf("(ok=%v,t%d), want empty with ticket 0", ok, ticket)
	}
	// Ticket 1 probes shard 1, also empty.
	if _, ok, ticket := q.DequeueTicket(deq); ok || ticket != 1 {
		t.Fatalf("(ok=%v,t%d), want empty with ticket 1", ok, ticket)
	}

	close(resume)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("enqueuer never completed")
	}

	// Ticket 2 revisits shard 0 and finds the handed-off value.
	if v, ok, ticket := q.DequeueTicket(deq); !ok || v != 42 || ticket != 2 {
		t.Fatalf("(%d,%v,t%d), want (42,true,t2)", v, ok, ticket)
	}
	st := q.DispatchStats()
	if st.EnqTickets != 1 || st.DeqTickets != 3 || st.EmptyClaims != 2 {
		t.Fatalf("stats=%+v", st)
	}
}

// TestDequeueTicketOvertakeWindow forces the dequeue-side window: a
// dequeuer that performed its ticket fetch-and-add and stalled before the
// shard pop. Later tickets — on other shards AND on the same residue —
// overtake it and may take the value the stalled ticket "pointed at".
// That reordering is legal under the bag-of-FIFOs spec because the
// stalled dequeue's interval overlaps the overtakers'; the per-shard
// subhistory stays FIFO-linearizable. The stalled dequeue must still
// complete with the shard's then-current head once resumed.
func TestDequeueTicketOvertakeWindow(t *testing.T) {
	const d1, d2, d3, enq = 1, 2, 3, 0
	q := New[int64](4, 2)
	q.Enqueue(enq, 10) // ticket 0 -> shard 0
	q.Enqueue(enq, 20) // ticket 1 -> shard 1
	q.Enqueue(enq, 30) // ticket 2 -> shard 0

	parked := make(chan struct{})
	resume := make(chan struct{})
	var once sync.Once
	prev := yield.Set(func(p yield.Point, caller, owner int) {
		if p == yield.SHDeqTicket && caller == d1 {
			once.Do(func() {
				if owner != 0 {
					t.Errorf("ticket 0 dispatched to shard %d", owner)
				}
				close(parked)
				<-resume
			})
		}
	})
	defer yield.Set(prev)

	d1Got := make(chan int64, 1)
	go func() {
		v, ok := q.Dequeue(d1) // ticket 0 -> shard 0; parks before the pop
		if !ok {
			t.Error("stalled dequeue found its shard empty")
		}
		d1Got <- v
	}()
	<-parked

	// d2's ticket 1 names shard 1: unaffected by the stalled d1.
	if v, ok, ticket := q.DequeueTicket(d2); !ok || v != 20 || ticket != 1 {
		t.Fatalf("(%d,%v,t%d), want (20,true,t1)", v, ok, ticket)
	}
	// d3's ticket 2 names shard 0 — the SAME shard d1 is stalled on — and
	// overtakes it inside the shard, taking the head value 10.
	if v, ok, ticket := q.DequeueTicket(d3); !ok || v != 10 || ticket != 2 {
		t.Fatalf("(%d,%v,t%d), want (10,true,t2)", v, ok, ticket)
	}

	// The resumed d1 pops shard 0's remaining head: 30. Earlier ticket,
	// later value — exactly the overtake the spec permits.
	close(resume)
	select {
	case v := <-d1Got:
		if v != 30 {
			t.Fatalf("stalled dequeue got %d, want 30", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled dequeue never completed")
	}
	if q.Len() != 0 {
		t.Fatalf("residual Len=%d", q.Len())
	}
}
