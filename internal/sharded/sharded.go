// Package sharded implements a wait-free sharded frontend over N
// independent Kogan–Petrank queue shards — the scaling layer past the
// single queue's state-array helping ceiling.
//
// # Dispatch
//
// Two global fetch-and-add ticket counters drive a round-robin
// dispatcher: the enqueuer holding ticket t appends to shard t mod N,
// and the dequeuer holding ticket u pops shard u mod N. Dispatch is one
// FAA — wait-free with no retry loop of any kind — and every shard
// operation is the underlying queue's own wait-free Enqueue/Dequeue, so
// the composition is wait-free end to end. A dequeuer never rescans
// other shards: it probes exactly the shard its ticket names, and
// reports empty (consuming the ticket) when that shard is empty.
//
// # What is and is not guaranteed
//
// Elements enqueued with tickets of the same residue class (t ≡ u mod N)
// are dequeued in FIFO order — per-shard FIFO. Across shards there is no
// ordering, and a Dequeue may report empty while elements sit in other
// shards; N consecutive empty results while no producer is active prove
// the whole queue empty, because consecutive tickets visit every
// residue. The structure is linearizable as a composition of N
// independent FIFO queues plus a wait-free dispatcher (a bag of FIFOs
// keyed by ticket order) — not as a single FIFO. See ALGORITHM.md,
// "Sharding: the ticket dispatcher".
package sharded

import (
	"fmt"
	"sync/atomic"

	"wfq/internal/core"
	"wfq/internal/waiter"
	"wfq/internal/yield"
)

// Shard is the per-shard queue contract. Both core queue flavours
// (*core.Queue, *core.HPQueue) satisfy it.
type Shard[T any] interface {
	Enqueue(tid int, v T)
	Dequeue(tid int) (v T, ok bool)
	Len() int
}

// pad separates the dispatcher's hot words; same two-cache-line unit as
// internal/core (adjacent-cacheline prefetcher pairs 64-byte lines).
const sepBytes = 128

// Queue is the sharded frontend. Create one with New (uniform core
// shards) or NewOf (caller-built shards); all methods are safe for
// concurrent use by up to NumThreads() threads with distinct tids.
type Queue[T any] struct {
	// enqT and deqT are the dispatch ticket counters. They are the only
	// shared-write words of the frontend itself, padded apart so
	// enqueuers and dequeuers do not false-share.
	enqT atomic.Uint64
	_    [sepBytes - 8]byte
	deqT atomic.Uint64
	_    [sepBytes - 8]byte
	// emptyClaims counts dequeue tickets burned on an empty shard — the
	// dispatcher's "fallback" statistic, read via DispatchStats. Written
	// only on the empty path, so it stays off the successful hot paths.
	emptyClaims atomic.Int64
	_           [sepBytes - 8]byte

	shards   []Shard[T]
	nthreads int

	// gate is the blocking/lifecycle layer: one eventcount + close
	// state for the WHOLE frontend, not per shard — dequeue tickets
	// roam every residue, so a per-shard waiter set could strand a
	// consumer on a shard no element will reach. See internal/waiter
	// and blocking.go.
	gate *waiter.Gate
	// drainMissed/drainLeft are the shared post-close drain mask: once
	// the gate has quiesced (no tracked enqueue can land anymore), any
	// dequeuer's empty observation of shard s is final — shard
	// emptiness is then monotone — so each first miss per shard is
	// recorded here, by whichever consumer makes it. drainLeft == 0
	// proves every shard was seen empty after quiescence: the queue is
	// drained. A per-consumer consecutive-miss count cannot serve: two
	// drainers alternating tickets each only ever visit half the
	// residues.
	drainMissed []atomic.Bool
	drainLeft   atomic.Int32
}

// New builds a frontend of nshards uniform shards, each a core queue for
// up to nthreads threads configured by opts (variant, fast path, metrics,
// ...). A core.WithShards option in opts is consumed by this layer and
// ignored by the shards themselves.
func New[T any](nthreads, nshards int, opts ...core.Option) *Queue[T] {
	if nshards <= 0 {
		panic("sharded: nshards must be positive")
	}
	shards := make([]Shard[T], nshards)
	for i := range shards {
		shards[i] = core.New[T](nthreads, opts...)
	}
	return NewOf[T](nthreads, shards)
}

// NewOf builds a frontend over caller-constructed shards — the hook for
// mixing shard flavours (e.g. hazard-pointer shards, or different
// variants per shard). Every shard must accept tids in [0, nthreads).
func NewOf[T any](nthreads int, shards []Shard[T]) *Queue[T] {
	if len(shards) == 0 {
		panic("sharded: need at least one shard")
	}
	if nthreads <= 0 {
		panic("sharded: nthreads must be positive")
	}
	q := &Queue[T]{
		shards:      shards,
		nthreads:    nthreads,
		gate:        waiter.NewGate(nthreads),
		drainMissed: make([]atomic.Bool, len(shards)),
	}
	q.drainLeft.Store(int32(len(shards)))
	return q
}

// NumThreads reports the frontend's concurrency bound.
func (q *Queue[T]) NumThreads() int { return q.nthreads }

// Shards reports the shard count.
func (q *Queue[T]) Shards() int { return len(q.shards) }

// Shard exposes shard i, for tests and metrics readers.
func (q *Queue[T]) Shard(i int) Shard[T] { return q.shards[i] }

// Name implements the harness's Named interface.
func (q *Queue[T]) Name() string { return fmt.Sprintf("sharded(%d)", len(q.shards)) }

// Enqueue inserts v on behalf of thread tid, dispatched by the next
// enqueue ticket.
func (q *Queue[T]) Enqueue(tid int, v T) { q.EnqueueTicket(tid, v) }

// EnqueueTicket is Enqueue returning the dispatch ticket it consumed
// (ticket mod Shards() is the shard the element landed in). The ticket
// is the frontend's observable dispatch decision; the lincheck tests
// partition histories with it.
func (q *Queue[T]) EnqueueTicket(tid int, v T) uint64 {
	t := q.enqT.Add(1) - 1
	shard := t % uint64(len(q.shards))
	yield.At(yield.SHEnqTicket, tid, int(shard))
	q.shards[shard].Enqueue(tid, v)
	return t
}

// Dequeue pops the shard named by the next dequeue ticket on behalf of
// thread tid. ok=false means that shard was empty at the pop's
// linearization point; other shards may still hold elements (see the
// package documentation for the drain rule).
func (q *Queue[T]) Dequeue(tid int) (v T, ok bool) {
	v, ok, _ = q.DequeueTicket(tid)
	return v, ok
}

// DequeueTicket is Dequeue returning the dispatch ticket it consumed.
func (q *Queue[T]) DequeueTicket(tid int) (v T, ok bool, ticket uint64) {
	// The quiescence license is read BEFORE the probe: a miss may only
	// mark the drain mask if no tracked enqueue could land after the
	// license was granted — a miss observed earlier could be
	// invalidated by a late in-flight enqueue. (One atomic load; the
	// mask write itself happens only on post-close misses.)
	quiesced := q.gate.Quiesced()
	t := q.deqT.Add(1) - 1
	shard := t % uint64(len(q.shards))
	yield.At(yield.SHDeqTicket, tid, int(shard))
	v, ok = q.shards[shard].Dequeue(tid)
	if !ok {
		q.emptyClaims.Add(1)
		if quiesced {
			q.markDrained(int(shard))
		}
	}
	return v, ok, t
}

// Batcher is the optional chained-append contract of a shard. Both core
// queue flavours satisfy it; a shard that does not is fed one element at
// a time.
type Batcher[T any] interface {
	EnqueueBatch(tid int, vs []T)
}

// EnqueueBatch inserts vs with one ticket fetch-and-add for the whole
// batch: the k elements take consecutive tickets t..t+k-1, so they fan
// out round-robin across the shards exactly as k single enqueues would,
// at one shared-counter RMW instead of k. A shard's whole ticket run
// (every ⌈k/N⌉-th element, gathered in ticket order) is then appended as
// ONE chained batch when the shard supports it (core.Queue.EnqueueBatch)
// — one linearizing CAS per shard instead of one per element — so the
// per-shard FIFO order is exactly that of k single enqueues. It returns
// the first ticket of the batch (meaningless when vs is empty).
func (q *Queue[T]) EnqueueBatch(tid int, vs []T) uint64 {
	k := uint64(len(vs))
	if k == 0 {
		return 0
	}
	nsh := uint64(len(q.shards))
	t := q.enqT.Add(k) - k
	if k == 1 || nsh == 1 {
		// Degenerate fan-out: the whole batch is one shard's run.
		shard := t % nsh
		if b, ok := q.shards[shard].(Batcher[T]); ok {
			// This loop exists only to emit one dispatch point per
			// element (chaos/choreography hooks see batches as k
			// tickets); without a hook it would be k wasted atomic
			// loads on the hot path, hence the Enabled guard.
			if yield.Enabled() {
				for range vs {
					yield.At(yield.SHEnqTicket, tid, int(shard))
				}
			}
			b.EnqueueBatch(tid, vs)
		} else {
			for _, v := range vs {
				yield.At(yield.SHEnqTicket, tid, int(shard))
				q.shards[shard].Enqueue(tid, v)
			}
		}
		return t
	}
	// General fan-out: stride-gather each shard's ticket run. Runs are
	// emitted shard-major rather than ticket-major; that reorders only
	// ACROSS shards, where no ordering is promised — within a shard the
	// gather preserves ascending tickets.
	var sub []T
	strides := nsh
	if k < nsh {
		strides = k
	}
	for off := uint64(0); off < strides; off++ {
		shard := (t + off) % nsh
		sub = sub[:0]
		for i := off; i < k; i += nsh {
			sub = append(sub, vs[i])
		}
		if yield.Enabled() { // see the degenerate branch: hook-only loop
			for range sub {
				yield.At(yield.SHEnqTicket, tid, int(shard))
			}
		}
		if b, ok := q.shards[shard].(Batcher[T]); ok {
			b.EnqueueBatch(tid, sub)
		} else {
			for _, v := range sub {
				q.shards[shard].Enqueue(tid, v)
			}
		}
	}
	return t
}

// DequeueBatch claims len(dst) dequeue tickets with one fetch-and-add
// and pops each ticket's shard, compacting the successful results into
// dst[:n] in ticket order. Tickets whose shard was empty are consumed
// (burned) like single empty dequeues; n < len(dst) reports how many
// probes found elements. n == 0 with an idle producer side means every
// shard in the probed window was empty.
func (q *Queue[T]) DequeueBatch(tid int, dst []T) (n int) {
	k := uint64(len(dst))
	if k == 0 {
		return 0
	}
	quiesced := q.gate.Quiesced() // see DequeueTicket: license precedes probes
	t := q.deqT.Add(k) - k
	for i := uint64(0); i < k; i++ {
		shard := (t + i) % uint64(len(q.shards))
		yield.At(yield.SHDeqTicket, tid, int(shard))
		if v, ok := q.shards[shard].Dequeue(tid); ok {
			dst[n] = v
			n++
		} else {
			q.emptyClaims.Add(1)
			if quiesced {
				q.markDrained(int(shard))
			}
		}
	}
	return n
}

// Len reports a racy snapshot of the total element count across shards.
// O(n); monitoring and tests only.
func (q *Queue[T]) Len() int {
	n := 0
	for _, s := range q.shards {
		n += s.Len()
	}
	return n
}

// ShardDepths reports a racy snapshot of each shard's element count —
// the per-shard depth gauge. A persistently skewed profile means the
// producer and consumer ticket streams have drifted (e.g. bursty batch
// sizes coprime with the shard count is fine; a stalled consumer is not).
func (q *Queue[T]) ShardDepths() []int {
	out := make([]int, len(q.shards))
	for i, s := range q.shards {
		out[i] = s.Len()
	}
	return out
}

// DispatchStats is a racy snapshot of the dispatcher's counters.
type DispatchStats struct {
	// EnqTickets and DeqTickets are the tickets issued so far.
	EnqTickets, DeqTickets uint64
	// EmptyClaims counts dequeue tickets burned on an empty shard.
	EmptyClaims int64
}

// DispatchStats reads the dispatcher counters.
func (q *Queue[T]) DispatchStats() DispatchStats {
	return DispatchStats{
		EnqTickets:  q.enqT.Load(),
		DeqTickets:  q.deqT.Load(),
		EmptyClaims: q.emptyClaims.Load(),
	}
}

// MaxObservedPhase reports the largest phase currently published in any
// shard's state array (the chaos watchdog's §3.3 wrap guard; see
// core.Queue.MaxObservedPhase). Shards that do not expose phases
// contribute zero.
func (q *Queue[T]) MaxObservedPhase() int64 {
	var m int64
	for _, s := range q.shards {
		if p, ok := s.(interface{ MaxObservedPhase() int64 }); ok {
			if v := p.MaxObservedPhase(); v > m {
				m = v
			}
		}
	}
	return m
}

// Metrics collects the per-shard core metrics (non-nil entries only when
// the shards were built with core.WithMetrics); index matches shard
// index. Shards that are not core GC queues yield nil.
func (q *Queue[T]) Metrics() []*core.Metrics {
	out := make([]*core.Metrics, len(q.shards))
	for i, s := range q.shards {
		if cq, ok := s.(*core.Queue[T]); ok {
			out[i] = cq.Metrics()
		}
	}
	return out
}
