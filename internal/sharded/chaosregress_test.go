package sharded

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfq/internal/waiter"
	"wfq/internal/yield"
)

// TestCloseDrainWithFrozenTicketHolder is the chaos-issue regression for
// the sharded frontend's prime starvation suspect: a consumer that
// performed its dequeue ticket fetch-and-add and then froze before the
// shard pop. Its ticket is burned and "points at" an element, but the
// close/drain protocol must not wait for it: Close returns, the live
// consumers drain every element and reach ErrClosed via the shared
// drain mask (their own tickets cover every residue), and the released
// victim finds its shard empty without corrupting the drained state.
// Run under -race by the tier-1 gate.
func TestCloseDrainWithFrozenTicketHolder(t *testing.T) {
	const producer, victim, cons1, cons2, elems = 0, 1, 2, 3, 20
	q := New[int](4, 2)
	for i := 0; i < elems; i++ {
		if err := q.TryEnqueue(producer, i); err != nil {
			t.Fatal(err)
		}
	}

	parked := make(chan struct{})
	resume := make(chan struct{})
	var once sync.Once
	prev := yield.Set(func(p yield.Point, caller, _ int) {
		if p == yield.SHDeqTicket && caller == victim {
			once.Do(func() {
				close(parked)
				<-resume
			})
		}
	})
	defer yield.Set(prev)

	victimGot := make(chan bool, 1)
	go func() {
		_, ok := q.Dequeue(victim) // ticket 0; freezes before the shard pop
		victimGot <- ok
	}()
	<-parked

	// Close must return promptly: it waits only for tracked enqueues,
	// never for an in-flight dequeue ticket.
	closeDone := make(chan struct{})
	go func() { q.Close(); close(closeDone) }()
	select {
	case <-closeDone:
	case <-time.After(30 * time.Second):
		t.Fatal("Close blocked on a frozen dequeue ticket holder")
	}

	// The live consumers must drain all elements and terminate with
	// ErrClosed while the victim is still frozen mid-dispatch — their
	// consecutive tickets visit both residues, so the shared drain mask
	// completes without the victim's help.
	var delivered atomic.Int64
	var wg sync.WaitGroup
	for _, tid := range []int{cons1, cons2} {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				_, err := q.DequeueCtx(context.Background(), tid)
				if err != nil {
					if !errors.Is(err, waiter.ErrClosed) {
						t.Errorf("consumer %d: %v", tid, err)
					}
					return
				}
				delivered.Add(1)
			}
		}(tid)
	}
	consDone := make(chan struct{})
	go func() { wg.Wait(); close(consDone) }()
	select {
	case <-consDone:
	case <-time.After(30 * time.Second):
		t.Fatal("live consumers hung behind a frozen ticket holder")
	}
	if got := delivered.Load(); got != elems {
		t.Fatalf("live consumers delivered %d of %d", got, elems)
	}
	if !q.Drained() {
		t.Fatal("Drained false after live consumers saw ErrClosed")
	}

	// Release the victim: its pop finds shard 0 empty (the element its
	// ticket named was legitimately overtaken), and — having read its
	// quiescence license before Close — its miss must not disturb the
	// completed drain state.
	close(resume)
	select {
	case ok := <-victimGot:
		if ok {
			t.Fatal("frozen ticket holder conjured an element from a drained queue")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("victim never completed after release")
	}
	if !q.Drained() {
		t.Fatal("victim's late miss corrupted the drain mask")
	}
	if q.Len() != 0 {
		t.Fatalf("residual Len=%d", q.Len())
	}
}
