package sharded

import (
	"testing"

	"wfq/internal/core"
	"wfq/internal/model"
)

// buildFuzzQueue constructs a frontend whose shape the fuzzer controls:
// shard count 1..8, thread count 1..4, and one of three shard mixes —
// uniform fast-path queues, uniform slow-path Opt12 queues, or an
// alternation of fast, plain, and hazard-pointer shards. Sequential
// behaviour must be identical across mixes, which is exactly what the
// lockstep differential below checks.
func buildFuzzQueue(nshards, nthreads, flavor int) *Queue[int64] {
	switch flavor % 3 {
	case 0:
		return New[int64](nthreads, nshards, core.WithFastPath(0))
	case 1:
		return New[int64](nthreads, nshards, core.WithVariant(core.VariantOpt12))
	default:
		shards := make([]Shard[int64], nshards)
		for i := range shards {
			switch i % 3 {
			case 0:
				shards[i] = core.New[int64](nthreads, core.WithFastPath(0))
			case 1:
				shards[i] = core.NewHP[int64](nthreads, 0, 0)
			default:
				shards[i] = core.New[int64](nthreads)
			}
		}
		return NewOf[int64](nthreads, shards)
	}
}

// FuzzSharded drives arbitrary single-goroutine programs of single and
// batch operations over fuzzer-chosen shard counts, thread usage and
// shard mixes, in lockstep with the sequential specification
// (model.Sharded). Checked per step: dequeue results (value and
// emptiness), returned tickets, and batch compaction; at the end, total
// length and ticket counters.
func FuzzSharded(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{2, 0, 1, 0, 1, 0, 1})
	f.Add([]byte{7, 3, 2, 0x42, 0x17, 0xfe, 0x03, 0x81, 0x2a})
	f.Add([]byte("sharded-fuzz-seed"))
	f.Add([]byte{5, 1, 2, 6, 6, 6, 7, 7, 7, 4, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		if len(data) > 256 {
			data = data[:256]
		}
		nshards := int(data[0])%8 + 1
		nthreads := int(data[1])%4 + 1
		q := buildFuzzQueue(nshards, nthreads, int(data[2]))
		ref := model.NewSharded(nshards)

		next := int64(0)
		dst := make([]int64, 6)
		for step, b := range data[3:] {
			tid := int(b>>6) % nthreads
			k := int(b>>2)%5 + 1
			switch b & 3 {
			case 0: // single enqueue
				next++
				ticket := q.EnqueueTicket(tid, next)
				if want := ref.Enqueue(next); ticket != want {
					t.Fatalf("step %d: enq ticket %d, want %d", step, ticket, want)
				}
			case 1: // single dequeue
				v, ok, _ := q.DequeueTicket(tid)
				rv, rok := ref.Dequeue()
				if ok != rok || (ok && v != rv) {
					t.Fatalf("step %d: deq (%d,%v), want (%d,%v)", step, v, ok, rv, rok)
				}
			case 2: // batch enqueue of k
				vs := make([]int64, k)
				for j := range vs {
					next++
					vs[j] = next
				}
				first := q.EnqueueBatch(tid, vs)
				for j, v := range vs {
					if want := ref.Enqueue(v); j == 0 && first != want {
						t.Fatalf("step %d: batch first ticket %d, want %d", step, first, want)
					}
				}
			default: // batch dequeue of k
				n := q.DequeueBatch(tid, dst[:k])
				var want []int64
				for j := 0; j < k; j++ {
					if rv, rok := ref.Dequeue(); rok {
						want = append(want, rv)
					}
				}
				if n != len(want) {
					t.Fatalf("step %d: batch deq n=%d, want %d", step, n, len(want))
				}
				for j, rv := range want {
					if dst[j] != rv {
						t.Fatalf("step %d: batch deq dst=%v, want %v", step, dst[:n], want)
					}
				}
			}
		}
		if q.Len() != ref.Len() {
			t.Fatalf("len %d, want %d", q.Len(), ref.Len())
		}
		st := q.DispatchStats()
		wantDepths := ref.Snapshot()
		for i, d := range q.ShardDepths() {
			if d != len(wantDepths[i]) {
				t.Fatalf("shard %d depth %d, want %d", i, d, len(wantDepths[i]))
			}
		}
		if st.EnqTickets != uint64(next) { // one ticket per enqueued value
			t.Fatalf("EnqTickets=%d, want %d", st.EnqTickets, next)
		}
	})
}
