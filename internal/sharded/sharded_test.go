package sharded

import (
	"sync"
	"testing"

	"wfq/internal/core"
	"wfq/internal/xrand"
)

// TestSequentialRoundRobin: single-threaded use of the sharded queue is
// exact FIFO as long as no empty probe interleaves (the enqueue and
// dequeue ticket streams then walk the same residue sequence).
func TestSequentialRoundRobin(t *testing.T) {
	q := New[int64](2, 3)
	for v := int64(0); v < 20; v++ {
		if ticket := q.EnqueueTicket(0, v); ticket != uint64(v) {
			t.Fatalf("value %d got ticket %d", v, ticket)
		}
	}
	if q.Len() != 20 {
		t.Fatalf("Len=%d", q.Len())
	}
	depths := q.ShardDepths()
	if len(depths) != 3 || depths[0] != 7 || depths[1] != 7 || depths[2] != 6 {
		t.Fatalf("depths=%v", depths)
	}
	for v := int64(0); v < 20; v++ {
		got, ok, ticket := q.DequeueTicket(1)
		if !ok || got != v || ticket != uint64(v) {
			t.Fatalf("dequeue = (%d,%v,t%d), want %d", got, ok, ticket, v)
		}
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("phantom element")
	}
}

// TestTicketBurnOnEmpty mirrors the model: an empty probe consumes its
// ticket, so a value enqueued into another shard needs a matching-residue
// ticket to surface.
func TestTicketBurnOnEmpty(t *testing.T) {
	q := New[int64](1, 2)
	q.Enqueue(0, 10) // ticket 0 -> shard 0
	if v, ok := q.Dequeue(0); !ok || v != 10 {
		t.Fatalf("(%d,%v)", v, ok)
	}
	if _, ok := q.Dequeue(0); ok { // ticket 1 -> shard 1: burn
		t.Fatal("shard 1 should be empty")
	}
	q.Enqueue(0, 20)               // ticket 1 -> shard 1
	if _, ok := q.Dequeue(0); ok { // ticket 2 -> shard 0: burn
		t.Fatal("shard 0 should be empty")
	}
	if v, ok := q.Dequeue(0); !ok || v != 20 { // ticket 3 -> shard 1
		t.Fatalf("(%d,%v), want 20", v, ok)
	}
	st := q.DispatchStats()
	if st.EnqTickets != 2 || st.DeqTickets != 4 || st.EmptyClaims != 2 {
		t.Fatalf("stats=%+v", st)
	}
}

// TestBatchTicketsAndFanout: one batch takes k consecutive tickets and
// fans out exactly like k singles; DequeueBatch compacts in ticket order.
func TestBatchTicketsAndFanout(t *testing.T) {
	q := New[int64](2, 4)
	if first := q.EnqueueBatch(0, []int64{0, 1, 2, 3, 4, 5}); first != 0 {
		t.Fatalf("first ticket %d", first)
	}
	if first := q.EnqueueBatch(0, []int64{6, 7}); first != 6 {
		t.Fatalf("second batch first ticket %d", first)
	}
	depths := q.ShardDepths()
	for i, d := range depths {
		if d != 2 {
			t.Fatalf("shard %d depth %d, want 2 (%v)", i, d, depths)
		}
	}
	dst := make([]int64, 8)
	if n := q.DequeueBatch(1, dst); n != 8 {
		t.Fatalf("batch dequeue got %d", n)
	}
	for i, v := range dst {
		if v != int64(i) {
			t.Fatalf("dst=%v", dst)
		}
	}
	// A batch over an empty queue burns all its tickets and reports 0.
	if n := q.DequeueBatch(1, dst[:5]); n != 0 {
		t.Fatalf("empty batch got %d", n)
	}
	if q.EnqueueBatch(0, nil) != 0 || q.DequeueBatch(0, nil) != 0 {
		t.Fatal("zero-length batches must be no-ops")
	}
}

// TestNewOfMixedShards drives a frontend whose shards mix the GC fast
// queue, the plain Opt12 queue, and the hazard-pointer queue.
func TestNewOfMixedShards(t *testing.T) {
	const threads = 3
	shards := []Shard[int64]{
		core.New[int64](threads, core.WithFastPath(0)),
		core.NewHP[int64](threads, 0, 0),
		core.New[int64](threads, core.WithVariant(core.VariantOpt12)),
	}
	q := NewOf[int64](threads, shards)
	for v := int64(0); v < 30; v++ {
		q.Enqueue(int(v)%threads, v)
	}
	for v := int64(0); v < 30; v++ {
		got, ok := q.Dequeue(int(v) % threads)
		if !ok || got != v {
			t.Fatalf("(%d,%v), want %d", got, ok, v)
		}
	}
}

// drain empties the queue from thread tid: nshards consecutive empty
// probes prove emptiness once producers are quiescent (consecutive
// tickets visit every residue class).
func drain(q *Queue[int64], tid int) []int64 {
	var out []int64
	misses := 0
	for misses < q.Shards() {
		if v, ok := q.Dequeue(tid); ok {
			out = append(out, v)
			misses = 0
		} else {
			misses++
		}
	}
	return out
}

// TestConservation8x8 is the acceptance workload: 8 shards × 8 threads,
// every thread both enqueues and dequeues, and after a quiescent drain
// every enqueued value must have been dequeued exactly once. Runs under
// -race in the tier-1 gate.
func TestConservation8x8(t *testing.T) {
	const threads, shards, perThread = 8, 8, 400
	q := New[int64](threads, shards, core.WithFastPath(0))
	var consumed sync.Map
	var wg sync.WaitGroup
	dequeued := make([]int, threads)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := xrand.New(uint64(tid) + 1)
			for i := 0; i < perThread; i++ {
				v := int64(tid)<<32 | int64(i)
				q.Enqueue(tid, v)
				if rng.Bool() {
					if got, ok := q.Dequeue(tid); ok {
						if _, dup := consumed.LoadOrStore(got, tid); dup {
							t.Errorf("value %d dequeued twice", got)
						}
						dequeued[tid]++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	rest := drain(q, 0)
	for _, v := range rest {
		if _, dup := consumed.LoadOrStore(v, -1); dup {
			t.Fatalf("value %d dequeued twice (drain)", v)
		}
	}
	total := len(rest)
	for _, d := range dequeued {
		total += d
	}
	if want := threads * perThread; total != want {
		t.Fatalf("conservation: %d values out, %d in", total, want)
	}
	if q.Len() != 0 {
		t.Fatalf("residual Len=%d", q.Len())
	}
}

// TestStressMixedBatchSingle mixes EnqueueBatch/DequeueBatch with single
// ops across shards from every thread — the -race stress of the ticket
// dispatcher's batch arithmetic. Conservation and per-shard FIFO of the
// underlying queues are the checked invariants (FIFO is the shards' own
// -race-tested property; here we assert conservation and no duplicates).
func TestStressMixedBatchSingle(t *testing.T) {
	const threads, shards, iters = 6, 4, 300
	q := New[int64](threads, shards, core.WithFastPath(0))
	var consumed sync.Map
	var produced, eaten [8]int64 // per-thread counters, padded enough for a test
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := xrand.New(uint64(tid)*97 + 13)
			next := int64(0)
			newVal := func() int64 {
				next++
				return int64(tid)<<32 | next
			}
			dst := make([]int64, 5)
			for i := 0; i < iters; i++ {
				switch rng.Next() % 4 {
				case 0:
					q.Enqueue(tid, newVal())
					produced[tid]++
				case 1:
					k := int(rng.Next()%5) + 1
					vs := make([]int64, k)
					for j := range vs {
						vs[j] = newVal()
					}
					q.EnqueueBatch(tid, vs)
					produced[tid] += int64(k)
				case 2:
					if v, ok := q.Dequeue(tid); ok {
						if _, dup := consumed.LoadOrStore(v, tid); dup {
							t.Errorf("duplicate %d", v)
						}
						eaten[tid]++
					}
				default:
					k := int(rng.Next()%5) + 1
					n := q.DequeueBatch(tid, dst[:k])
					for _, v := range dst[:n] {
						if _, dup := consumed.LoadOrStore(v, tid); dup {
							t.Errorf("duplicate %d", v)
						}
					}
					eaten[tid] += int64(n)
				}
			}
		}(w)
	}
	wg.Wait()
	var in, out int64
	for i := 0; i < threads; i++ {
		in += produced[i]
		out += eaten[i]
	}
	out += int64(len(drain(q, 0)))
	if in != out {
		t.Fatalf("conservation: %d in, %d out", in, out)
	}
}
