package sharded

import (
	"context"

	"wfq/internal/waiter"
)

// This file is the frontend's blocking/lifecycle surface: tracked
// (close-aware, waiter-notifying) enqueues, Close with linearizable
// close-after-drain semantics, and context-aware blocking dequeues. The
// plain ticket operations in sharded.go stay untracked and unchanged —
// they are the benchmark surface — and remain usable alongside these as
// long as the caller does not race plain enqueues with Close.

// Gate exposes the frontend's blocking/lifecycle layer so the facade
// (package wfq) can drive the generic park loops with a caller-supplied
// liveness (Handle leases) against this queue's waiter set.
func (q *Queue[T]) Gate() *waiter.Gate { return q.gate }

// Drained reports whether, after Close quiesced the enqueue side, every
// shard has been observed empty at least once. Implements
// waiter.Source; meaningful only post-quiescence (false before).
func (q *Queue[T]) Drained() bool { return q.drainLeft.Load() == 0 }

// markDrained records a post-quiescence empty observation of shard s.
// Shard emptiness is monotone once no enqueue can land, so the first
// miss per shard decides it forever.
func (q *Queue[T]) markDrained(s int) {
	if !q.drainMissed[s].Swap(true) {
		q.drainLeft.Add(-1)
	}
}

// Close closes the queue: tracked enqueues fail with waiter.ErrClosed
// from here on, parked waiters wake, and pending elements remain
// dequeuable. Close returns (nil) only after every tracked enqueue that
// entered before the close has landed, so the element set is fixed.
// Later calls return waiter.ErrClosed.
func (q *Queue[T]) Close() error { return q.gate.Close() }

// Closed reports whether Close has begun.
func (q *Queue[T]) Closed() bool { return q.gate.Closed() }

// TryEnqueue is the tracked Enqueue: it fails with waiter.ErrClosed
// after Close (publishing nothing), and wakes blocked dequeuers when it
// succeeds. Uncontended extra cost over Enqueue: two flag stores, one
// closed load, one waiter-count load.
func (q *Queue[T]) TryEnqueue(tid int, v T) error {
	_, err := q.TryEnqueueTicket(tid, v)
	return err
}

// TryEnqueueTicket is TryEnqueue returning the dispatch ticket.
func (q *Queue[T]) TryEnqueueTicket(tid int, v T) (uint64, error) {
	if !q.gate.Enter(tid) {
		return 0, waiter.ErrClosed
	}
	t := q.EnqueueTicket(tid, v)
	q.gate.Exit(tid)
	q.gate.Notify(tid)
	return t, nil
}

// TryEnqueueBatch is the tracked EnqueueBatch: all-or-nothing against
// Close, one notify for the whole batch.
func (q *Queue[T]) TryEnqueueBatch(tid int, vs []T) (uint64, error) {
	if !q.gate.Enter(tid) {
		return 0, waiter.ErrClosed
	}
	t := q.EnqueueBatch(tid, vs)
	q.gate.Exit(tid)
	q.gate.Notify(tid)
	return t, nil
}

// DequeueCtx blocks until an element is available (returned with nil
// error even if the queue closed meanwhile — pending elements remain
// dequeuable), the queue is closed AND drained (waiter.ErrClosed), or
// ctx ends (ctx.Err()). The fast path — element available — is the
// plain wait-free ticket dequeue plus one atomic load; parking happens
// only after bounded empty attempts.
func (q *Queue[T]) DequeueCtx(ctx context.Context, tid int) (T, error) {
	return waiter.DequeueCtx[T](ctx, q.gate, q, nil, tid, waiter.DefaultSpin, len(q.shards))
}

// DequeueBatchCtx blocks until at least one element lands in dst
// (n > 0, nil error), the queue is closed and drained (0,
// waiter.ErrClosed), or ctx ends.
func (q *Queue[T]) DequeueBatchCtx(ctx context.Context, tid int, dst []T) (int, error) {
	return waiter.DequeueBatchCtx[T](ctx, q.gate, q, nil, tid, waiter.DefaultSpin, len(q.shards), dst)
}
