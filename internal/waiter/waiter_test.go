package waiter

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// awaitWaiter blocks until ec reports a registered waiter, with a
// deadline — deterministic park detection for the wake tests.
// Registration precedes the physical park and is the event the
// no-lost-wakeup protocol keys on, so "registered" is the exact
// precondition a notifier needs; no sleep calibration involved.
func awaitWaiter(t *testing.T, ec *EventCount) {
	t.Helper()
	for deadline := time.Now().Add(30 * time.Second); ec.Waiters() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("waiter never registered")
		}
		runtime.Gosched()
	}
}

// chanSource is a trivial Source: a mutex-guarded slice. Drained is the
// single-FIFO rule (empty observation is genuine emptiness).
type chanSource struct {
	mu  sync.Mutex
	buf []int
}

func (s *chanSource) push(v int) {
	s.mu.Lock()
	s.buf = append(s.buf, v)
	s.mu.Unlock()
}

func (s *chanSource) Dequeue(int) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) == 0 {
		return 0, false
	}
	v := s.buf[0]
	s.buf = s.buf[1:]
	return v, true
}

func (s *chanSource) Drained() bool { return true }

func (s *chanSource) DequeueBatch(tid int, dst []int) int {
	n := 0
	for n < len(dst) {
		v, ok := s.Dequeue(tid)
		if !ok {
			break
		}
		dst[n] = v
		n++
	}
	return n
}

func TestEventCountRegisterKeyVoidedByNotify(t *testing.T) {
	var ec EventCount
	key := ec.Register()
	if ec.Waiters() != 1 {
		t.Fatalf("waiters %d", ec.Waiters())
	}
	ec.Notify(0) // waiter registered → must bump seq
	if got := ec.Seq(); got == key {
		t.Fatal("notify with a registered waiter did not move the sequence")
	}
	// A voided key must not park.
	done := make(chan error, 1)
	go func() { done <- ec.Wait(context.Background(), key, 0) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait parked on a voided key")
	}
	if ec.Waiters() != 0 {
		t.Fatalf("waiters %d after wait", ec.Waiters())
	}
}

func TestEventCountNotifySkippedWithoutWaiters(t *testing.T) {
	var ec EventCount
	before := ec.Seq()
	ec.Notify(0)
	if ec.Seq() != before {
		t.Fatal("notify bumped seq with no waiter registered")
	}
}

func TestEventCountWaitWakesOnNotify(t *testing.T) {
	var ec EventCount
	done := make(chan error, 1)
	go func() {
		key := ec.Register()
		done <- ec.Wait(context.Background(), key, 0)
	}()
	awaitWaiter(t, &ec)
	ec.Notify(0)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("notify did not wake the parked waiter")
	}
}

func TestEventCountWaitHonorsContext(t *testing.T) {
	var ec EventCount
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		key := ec.Register()
		done <- ec.Wait(ctx, key, 0)
	}()
	awaitWaiter(t, &ec)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancel did not wake the parked waiter")
	}
	if ec.Waiters() != 0 {
		t.Fatalf("waiters %d after cancelled wait", ec.Waiters())
	}
}

func TestLifecycleEnterAfterCloseFails(t *testing.T) {
	g := NewGate(2)
	if !g.Enter(0) {
		t.Fatal("enter on open gate failed")
	}
	g.Exit(0)
	if err := g.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if g.Enter(1) {
		t.Fatal("enter succeeded after close")
	}
	if err := g.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second close: %v, want ErrClosed", err)
	}
	if !g.Closed() || !g.Quiesced() {
		t.Fatal("close did not publish closed+quiesced")
	}
}

func TestCloseAwaitsInflightEnqueue(t *testing.T) {
	g := NewGate(2)
	if !g.Enter(0) {
		t.Fatal("enter failed")
	}
	closed := make(chan error, 1)
	go func() { closed <- g.Close() }()
	// Close must not return while tid 0 is still in flight.
	select {
	case <-closed:
		t.Fatal("Close returned with an enqueue in flight")
	case <-time.After(50 * time.Millisecond):
	}
	if g.Quiesced() {
		t.Fatal("quiesced published with an enqueue in flight")
	}
	g.Exit(0)
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return after the in-flight enqueue exited")
	}
	if !g.Quiesced() {
		t.Fatal("quiesced not published after close")
	}
}

func TestDequeueCtxFastPath(t *testing.T) {
	g := NewGate(1)
	src := &chanSource{}
	src.push(42)
	v, err := DequeueCtx[int](context.Background(), g, src, nil, 0, 0, 0)
	if err != nil || v != 42 {
		t.Fatalf("got (%d, %v)", v, err)
	}
	if g.EC().Seq() != 0 || g.EC().Waiters() != 0 {
		t.Fatal("fast path touched the eventcount")
	}
}

func TestDequeueCtxParksAndWakes(t *testing.T) {
	g := NewGate(2)
	src := &chanSource{}
	done := make(chan int, 1)
	go func() {
		v, err := DequeueCtx[int](context.Background(), g, src, nil, 0, 0, 0)
		if err != nil {
			t.Errorf("DequeueCtx: %v", err)
		}
		done <- v
	}()
	awaitWaiter(t, g.EC())
	// Producer protocol: publish, then notify.
	src.push(7)
	g.Notify(1)
	select {
	case v := <-done:
		if v != 7 {
			t.Fatalf("got %d", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked consumer missed the wakeup")
	}
}

func TestDequeueCtxCloseDrain(t *testing.T) {
	g := NewGate(1)
	src := &chanSource{}
	src.push(1)
	src.push(2)
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	ctx := context.Background()
	for want := 1; want <= 2; want++ {
		v, err := DequeueCtx[int](ctx, g, src, nil, 0, 0, 0)
		if err != nil || v != want {
			t.Fatalf("drain got (%d, %v), want (%d, nil)", v, err, want)
		}
	}
	if _, err := DequeueCtx[int](ctx, g, src, nil, 0, 0, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("drained dequeue: %v, want ErrClosed", err)
	}
}

func TestDequeueCtxCloseWakesParked(t *testing.T) {
	g := NewGate(1)
	src := &chanSource{}
	done := make(chan error, 1)
	go func() {
		_, err := DequeueCtx[int](context.Background(), g, src, nil, 0, 0, 0)
		done <- err
	}()
	awaitWaiter(t, g.EC())
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("woken waiter returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not wake the parked waiter")
	}
}

func TestDequeueCtxPrefersElementOverExpiredContext(t *testing.T) {
	g := NewGate(1)
	src := &chanSource{}
	src.push(9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if v, err := DequeueCtx[int](ctx, g, src, nil, 0, 0, 0); err != nil || v != 9 {
		t.Fatalf("got (%d, %v), want (9, nil)", v, err)
	}
	if _, err := DequeueCtx[int](ctx, g, src, nil, 0, 0, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("empty dequeue under cancelled ctx: %v", err)
	}
}

type fatalLiveness struct{ err error }

func (l fatalLiveness) Err() error { return l.err }

func TestDequeueCtxLivenessCheckedFirst(t *testing.T) {
	g := NewGate(1)
	src := &chanSource{}
	src.push(1)
	want := errors.New("lease gone")
	_, err := DequeueCtx[int](context.Background(), g, src, fatalLiveness{want}, 0, 0, 0)
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want liveness error even with an element available", err)
	}
}

func TestDequeueBatchCtx(t *testing.T) {
	g := NewGate(2)
	src := &chanSource{}
	dst := make([]int, 4)
	done := make(chan int, 1)
	go func() {
		n, err := DequeueBatchCtx[int](context.Background(), g, src, nil, 0, 0, 0, dst)
		if err != nil {
			t.Errorf("DequeueBatchCtx: %v", err)
		}
		done <- n
	}()
	awaitWaiter(t, g.EC())
	src.push(1)
	src.push(2)
	g.Notify(1)
	select {
	case n := <-done:
		if n == 0 {
			t.Fatal("batch woke with nothing")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked batch consumer missed the wakeup")
	}
	// After close+drain the batch form reports (0, ErrClosed).
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for {
		n, err := DequeueBatchCtx[int](context.Background(), g, src, nil, 0, 0, 0, dst)
		if err != nil {
			if n != 0 || !errors.Is(err, ErrClosed) {
				t.Fatalf("(%d, %v)", n, err)
			}
			break
		}
	}
}

// TestNoLostWakeupStress hammers the publish→notify / register→recheck→
// park pair from many goroutines: every pushed element must be consumed
// — a lost wakeup shows up as a hang (caught by the deadline watchdog).
func TestNoLostWakeupStress(t *testing.T) {
	const producers, consumers, perProducer = 4, 4, 2000
	g := NewGate(producers + consumers)
	src := &chanSource{}
	var got atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if !g.Enter(tid) {
					t.Error("enter failed while open")
					return
				}
				src.push(tid<<20 | i)
				g.Exit(tid)
				g.Notify(tid)
			}
		}(p)
	}
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func(tid int) {
			defer cwg.Done()
			for {
				_, err := DequeueCtx[int](context.Background(), g, src, nil, tid, 0, 0)
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("consumer: %v", err)
					}
					return
				}
				got.Add(1)
			}
		}(producers + c)
	}
	wg.Wait()
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	done := make(chan struct{})
	go func() { cwg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("consumers hung: lost wakeup or broken drain")
	}
	if got.Load() != producers*perProducer {
		t.Fatalf("consumed %d of %d", got.Load(), producers*perProducer)
	}
}
