package waiter

import (
	"errors"
	"runtime"
	"sync/atomic"
)

// ErrClosed reports an operation on a closed queue: an enqueue after
// Close, or a dequeue after Close once every pending element has been
// drained.
var ErrClosed = errors.New("wfq: queue closed")

// flag is one thread's in-flight indicator, padded so enqueuers on
// different tids do not false-share during the Enter/Exit pair.
type flag struct {
	v atomic.Int32
	_ [sepBytes - 4]byte
}

// Lifecycle tracks the open→closed→quiesced progression of a queue and
// the set of in-flight tracked enqueues, giving Close its linearizable
// close-after-drain semantics:
//
//   - an enqueue that Enters after the closed flag is set fails without
//     touching the queue;
//   - Close waits until every enqueue that Entered before the flag was
//     set has Exited (quiescence), so when Close returns, the set of
//     elements that will ever be in the queue is fixed;
//   - only after quiescence may a dequeuer's empty observation be
//     promoted to "drained, ErrClosed" — before it, a late in-flight
//     enqueue could still land.
//
// The Enter/Close handshake is the store-buffering (Dekker) pattern:
// Enter stores its in-flight flag and THEN loads closed; Close stores
// closed and THEN loads the in-flight flags. Under sequentially
// consistent atomics (Go's sync/atomic) at least one of the two
// observes the other, so an enqueue either aborts or is awaited — never
// neither.
type Lifecycle struct {
	closed atomic.Bool
	_      [sepBytes - 1]byte
	// quiesced becomes true once Close has observed every tracked
	// enqueue finished. It is the license dequeuers need to treat empty
	// observations as final.
	quiesced atomic.Bool
	_        [sepBytes - 1]byte
	inflight []flag
}

// initLifecycle sizes the in-flight flag array for nthreads tids.
func (l *Lifecycle) init(nthreads int) {
	l.inflight = make([]flag, nthreads)
}

// Enter marks tid's enqueue in flight and reports whether it may
// proceed; false means the queue is closed and nothing was published.
// Every true return must be balanced by Exit after the element is
// visible.
func (l *Lifecycle) Enter(tid int) bool {
	l.inflight[tid].v.Store(1)
	if l.closed.Load() {
		l.inflight[tid].v.Store(0)
		return false
	}
	return true
}

// Exit marks tid's enqueue finished. Call after the element's
// linearizing CAS — from here on, Close no longer waits for it.
func (l *Lifecycle) Exit(tid int) {
	l.inflight[tid].v.Store(0)
}

// Closed reports whether Close has begun.
func (l *Lifecycle) Closed() bool { return l.closed.Load() }

// Quiesced reports whether Close has additionally observed all tracked
// enqueues finished.
func (l *Lifecycle) Quiesced() bool { return l.quiesced.Load() }

// beginClose sets the closed flag; false means another closer got
// there first.
func (l *Lifecycle) beginClose() bool {
	return !l.closed.Swap(true)
}

// awaitQuiesce blocks until every in-flight tracked enqueue has Exited,
// then publishes quiescence. Each wait is bounded by the remainder of
// one enqueue call (enqueues are non-blocking), so this terminates as
// long as the scheduler runs every thread.
func (l *Lifecycle) awaitQuiesce() {
	for i := range l.inflight {
		for l.inflight[i].v.Load() != 0 {
			runtime.Gosched()
		}
	}
	l.quiesced.Store(true)
}
