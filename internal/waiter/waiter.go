// Package waiter is the blocking and lifecycle layer over the repo's
// non-blocking queues: an eventcount-style parking primitive whose fast
// path is wait-free, plus linearizable Close/drain semantics and the
// generic bounded-spin-then-park dequeue loops every frontend shares.
//
// # Why an eventcount
//
// The KP queue (and every other queue here) is non-blocking by
// construction: an empty deq() returns immediately. A consumer that
// wants to SLEEP on empty needs a separate wait/notify protocol, and the
// classic lost-wakeup hazard sits exactly in the gap between "I probed
// and found nothing" and "I am parked": an element enqueued in that gap
// must still wake the consumer. The eventcount closes the gap with a
// three-step consumer protocol —
//
//	register (waiters++)  →  key := seq  →  recheck the queue  →  park
//
// — paired with a producer that makes its element visible FIRST and only
// then checks for waiters and bumps seq. Interleave them any way you
// like: either the consumer's recheck sees the element, or the
// producer's waiter-probe sees the registration and its seq bump
// invalidates the consumer's key, so Wait returns without parking. The
// argument is the store-buffering (Dekker) pattern; Go's sync/atomic
// operations are sequentially consistent, which is exactly the fence
// strength it needs.
//
// # Progress
//
// The producer side is wait-free: one atomic load when no waiter is
// registered (the common case), one mutex-guarded broadcast when one is.
// The consumer's FAST path — element available — is the underlying
// queue's own wait-free dequeue plus one atomic sequence load; only the
// slow path (provably empty queue) parks, and blocking-on-empty is not a
// progress violation: wait-freedom bounds the steps of operations, and
// an operation whose specification says "wait for an element" has
// nothing to complete until one arrives. See ALGORITHM.md, "Blocking and
// termination".
package waiter

import (
	"context"
	"sync"
	"sync/atomic"

	"wfq/internal/yield"
)

// sepBytes matches internal/core's false-sharing unit (two cache lines,
// for the adjacent-line prefetcher).
const sepBytes = 128

// EventCount is the parking primitive: a sequence number producers bump
// when they publish work, a waiter count producers probe to skip the
// broadcast entirely when nobody sleeps, and a broadcast channel
// replaced wholesale on every wake (the close-and-replace idiom, so a
// single notify wakes every current waiter and is never "used up" by a
// stale one).
type EventCount struct {
	// seq counts notifications. A consumer snapshots it (the "key")
	// before its final empty recheck; Wait refuses to park if seq moved,
	// because the move may be the wakeup for an element the recheck
	// missed.
	seq atomic.Uint64
	_   [sepBytes - 8]byte
	// waiters counts registered consumers. Producers load it after
	// publishing; zero means no one can be between register and park, so
	// the notify is skipped — this keeps the uncontended enqueue cost at
	// one atomic load.
	waiters atomic.Int32
	_       [sepBytes - 4]byte

	mu sync.Mutex
	ch chan struct{} // current epoch's broadcast channel (lazily made)
}

// Register announces the caller as a waiter and returns the wait key.
// The caller MUST recheck the queue after Register returns and before
// Wait: the key is only as old as this call, and producers only promise
// to wake waiters registered before their element became visible.
// Every Register must be balanced by exactly one Unregister or Wait.
func (e *EventCount) Register() (key uint64) {
	e.waiters.Add(1)
	return e.seq.Load()
}

// Unregister withdraws a registration without waiting (the recheck found
// an element, or the caller is giving up for another reason).
func (e *EventCount) Unregister() {
	e.waiters.Add(-1)
}

// Wait parks the caller until a notification newer than key arrives, ctx
// is done, or the registration is consumed by a concurrent broadcast.
// It returns ctx.Err() if ctx ended the wait, nil otherwise. Wait
// consumes the registration in all cases.
func (e *EventCount) Wait(ctx context.Context, key uint64, tid int) error {
	e.mu.Lock()
	if e.seq.Load() != key {
		// A notify landed between the key snapshot and here — it may be
		// the wakeup for an element the caller's recheck missed, so do
		// not park; the caller re-probes.
		e.mu.Unlock()
		e.waiters.Add(-1)
		return nil
	}
	if e.ch == nil {
		e.ch = make(chan struct{})
	}
	ch := e.ch
	e.mu.Unlock()

	yield.At(yield.WQBeforePark, tid, -1)
	select {
	case <-ch:
		e.waiters.Add(-1)
		yield.At(yield.WQAfterWake, tid, -1)
		return nil
	case <-ctx.Done():
		e.waiters.Add(-1)
		yield.At(yield.WQAfterWake, tid, -1)
		return ctx.Err()
	}
}

// Notify wakes all current waiters if any are registered. Producers call
// it AFTER their element is visible (after the linearizing CAS); the
// publish-then-probe order is what makes the no-waiter fast path sound.
// Cost with no waiter: one atomic load.
func (e *EventCount) Notify(tid int) {
	if e.waiters.Load() == 0 {
		return
	}
	yield.At(yield.WQNotify, tid, -1)
	e.broadcast()
}

// Broadcast unconditionally wakes all current waiters (Close uses it:
// the closed flag, unlike an element, cannot be "re-observed" by a
// later prober counting on a second notify).
func (e *EventCount) Broadcast() {
	e.broadcast()
}

// broadcast bumps seq and retires the current epoch channel. The bump
// and the channel close happen under mu — the same lock Wait holds while
// deciding to park — so a waiter either sees the new seq (and refuses to
// park) or captured the channel this close is about to signal.
func (e *EventCount) broadcast() {
	e.mu.Lock()
	e.seq.Add(1)
	if e.ch != nil {
		close(e.ch)
		e.ch = nil
	}
	e.mu.Unlock()
}

// Seq exposes the notification counter (tests and diagnostics).
func (e *EventCount) Seq() uint64 { return e.seq.Load() }

// Waiters exposes the registered-waiter count (tests and diagnostics).
func (e *EventCount) Waiters() int { return int(e.waiters.Load()) }
