package waiter

import (
	"context"
	"errors"
	"testing"
	"time"

	"wfq/internal/yield"
)

// stallAt parks the consumer goroutine (tid) the first time it reaches
// point p, reporting arrival on arrived and resuming on release. Other
// points and tids pass through.
func stallAt(t *testing.T, p yield.Point, tid int) (arrived, release chan struct{}, undo func()) {
	t.Helper()
	arrived = make(chan struct{})
	release = make(chan struct{})
	fired := false
	prev := yield.Set(func(pt yield.Point, caller, _ int) {
		if pt == p && caller == tid && !fired {
			fired = true
			arrived <- struct{}{}
			<-release
		}
	})
	undo = func() { yield.Set(prev) }
	return arrived, release, undo
}

// TestWakeRacesPark drives the exact interleaving the epoch-channel
// design exists for: the consumer has passed its under-lock recheck and
// stands right before the parking select (WQBeforePark) when the
// producer publishes and notifies. The notify must not be lost — the
// consumer captured this epoch's channel under the same lock the
// broadcast closes it under, so the select falls through immediately.
func TestWakeRacesPark(t *testing.T) {
	const consumer, producer = 0, 1
	arrived, release, undo := stallAt(t, yield.WQBeforePark, consumer)
	defer undo()

	g := NewGate(2)
	src := &chanSource{}
	got := make(chan int, 1)
	go func() {
		v, err := DequeueCtx[int](context.Background(), g, src, nil, consumer, 1, 1)
		if err != nil {
			t.Errorf("DequeueCtx: %v", err)
		}
		got <- v
	}()
	<-arrived // consumer is between recheck and select

	// Producer: publish, then notify (waiters==1, so it broadcasts).
	if !g.Enter(producer) {
		t.Fatal("enter failed")
	}
	src.push(5)
	g.Exit(producer)
	g.Notify(producer)

	close(release) // let the consumer run into the select
	select {
	case v := <-got:
		if v != 5 {
			t.Fatalf("got %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wakeup lost across the recheck/park window")
	}
}

// TestCloseRacesPark stalls the consumer in the same pre-select window
// while Close runs to completion; the close broadcast must reach the
// consumer's captured channel so it wakes into the drain and returns
// ErrClosed instead of sleeping on a closed empty queue forever.
func TestCloseRacesPark(t *testing.T) {
	const consumer = 0
	arrived, release, undo := stallAt(t, yield.WQBeforePark, consumer)
	defer undo()

	g := NewGate(1)
	src := &chanSource{}
	done := make(chan error, 1)
	go func() {
		_, err := DequeueCtx[int](context.Background(), g, src, nil, consumer, 1, 1)
		done <- err
	}()
	<-arrived
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("got %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close broadcast lost across the recheck/park window")
	}
}

// TestNotifyRacesRecheck stalls the consumer at WQPrepare — registered,
// key in hand, recheck not yet run — while the producer publishes and
// notifies. Whichever leg catches it (the recheck finding the element,
// or the seq bump voiding the key), the consumer must return the
// element without a second notify.
func TestNotifyRacesRecheck(t *testing.T) {
	const consumer, producer = 0, 1
	arrived, release, undo := stallAt(t, yield.WQPrepare, consumer)
	defer undo()

	g := NewGate(2)
	src := &chanSource{}
	got := make(chan int, 1)
	go func() {
		v, err := DequeueCtx[int](context.Background(), g, src, nil, consumer, 1, 1)
		if err != nil {
			t.Errorf("DequeueCtx: %v", err)
		}
		got <- v
	}()
	<-arrived

	if !g.Enter(producer) {
		t.Fatal("enter failed")
	}
	src.push(11)
	g.Exit(producer)
	g.Notify(producer)

	close(release)
	select {
	case v := <-got:
		if v != 11 {
			t.Fatalf("got %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("element published during the register/recheck window was lost")
	}
}

// TestCloseRacesPrepare is TestNotifyRacesRecheck's close-side twin:
// Close completes while the consumer stands between registration and
// recheck. The closed check after the recheck (or the broadcast's seq
// bump) must divert it into the drain.
func TestCloseRacesPrepare(t *testing.T) {
	const consumer = 0
	arrived, release, undo := stallAt(t, yield.WQPrepare, consumer)
	defer undo()

	g := NewGate(1)
	src := &chanSource{}
	done := make(chan error, 1)
	go func() {
		_, err := DequeueCtx[int](context.Background(), g, src, nil, consumer, 1, 1)
		done <- err
	}()
	<-arrived
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("got %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close during the register/recheck window was lost")
	}
}
