package waiter

import (
	"context"
	"runtime"

	"wfq/internal/yield"
)

// DefaultSpin is the bounded number of direct dequeue attempts a
// blocking consumer makes before it starts the registration/park
// protocol — the same "bounded optimism before the heavyweight path"
// shape as the fast-path engine's patience.
const DefaultSpin = 8

// Gate bundles the two halves of the blocking layer — the parking
// primitive and the close/drain lifecycle — into the single object a
// queue frontend embeds. One Gate serves the whole queue (sharded
// frontends share one across shards: dequeue tickets roam all residues,
// so a per-shard waiter set could strand a consumer on a shard no
// element will reach).
type Gate struct {
	ec EventCount
	lc Lifecycle
}

// NewGate builds a gate for a queue with tids in [0, nthreads).
func NewGate(nthreads int) *Gate {
	g := &Gate{}
	g.lc.init(nthreads)
	return g
}

// Enter begins a tracked enqueue; false means the queue is closed.
func (g *Gate) Enter(tid int) bool { return g.lc.Enter(tid) }

// Exit ends a tracked enqueue (element visible).
func (g *Gate) Exit(tid int) { g.lc.Exit(tid) }

// Notify wakes waiters after an element became visible; one atomic load
// when nobody waits.
func (g *Gate) Notify(tid int) { g.ec.Notify(tid) }

// Broadcast unconditionally wakes all waiters (Handle.Release uses it
// so a stale parked waiter re-examines its lease promptly).
func (g *Gate) Broadcast() { g.ec.Broadcast() }

// Closed reports whether Close has begun.
func (g *Gate) Closed() bool { return g.lc.Closed() }

// Quiesced reports whether Close has observed enqueue quiescence.
func (g *Gate) Quiesced() bool { return g.lc.Quiesced() }

// Close transitions the queue to closed: subsequent tracked enqueues
// fail with ErrClosed, parked waiters are woken, and Close returns only
// after every tracked enqueue that entered before the flag has
// finished — so the element set is fixed when it returns, and a
// dequeuer's later empty observation is final. The first call returns
// nil; later calls return ErrClosed immediately (possibly before the
// first closer finished quiescing).
//
// Only TRACKED enqueues (the Try* paths, and everything built on them)
// participate in the handshake: a caller mixing Close with the plain
// untracked Enqueue paths must itself ensure those calls finished.
func (g *Gate) Close() error {
	if !g.lc.beginClose() {
		return ErrClosed
	}
	yield.At(yield.WQCloseBroadcast, -1, -1)
	g.ec.Broadcast()
	g.lc.awaitQuiesce()
	return nil
}

// EC exposes the parking primitive (tests and diagnostics).
func (g *Gate) EC() *EventCount { return &g.ec }

// Source is the queue view the generic blocking loops consume: the
// non-blocking dequeue plus the emptiness-finality test.
type Source[T any] interface {
	// Dequeue is the underlying non-blocking dequeue.
	Dequeue(tid int) (v T, ok bool)
	// Drained reports whether an empty Dequeue observation, made after
	// the gate quiesced, proves the queue holds nothing more. A single
	// FIFO returns true unconditionally — its empty result linearizes
	// as genuine emptiness, which closure makes permanent. A sharded
	// frontend returns true only once post-quiescence misses have
	// covered every shard residue.
	Drained() bool
}

// BatchSource is Source for frontends with a first-class DequeueBatch.
type BatchSource[T any] interface {
	Source[T]
	DequeueBatch(tid int, dst []T) int
}

// Liveness lets a caller identity (a leased Handle) veto further
// blocking: Err is checked at the top of every blocking-loop iteration
// — in particular right after every wakeup, before the queue is touched
// — so a waiter parked under a released lease returns the lease's error
// instead of acting on wakeups meant for the lease's next holder.
type Liveness interface {
	Err() error
}

// DequeueCtx is the blocking dequeue every frontend wires up: up to
// spin direct attempts (the wait-free fast path — on the non-empty path
// this returns without ever touching the eventcount), then the
// register → recheck → park protocol until an element, closure-drain,
// ctx end, or liveness failure decides it. alive may be nil.
//
// cycle is the number of post-registration recheck probes; it must be
// at least the number of dispatch residues a probe can land on (1 for a
// single FIFO, Shards() for the sharded frontend) — the lost-wakeup
// argument needs every parking consumer to have probed a full residue
// window after registering.
func DequeueCtx[T any](ctx context.Context, g *Gate, q Source[T], alive Liveness, tid, spin, cycle int) (T, error) {
	var zero T
	if spin <= 0 {
		spin = DefaultSpin
	}
	if cycle <= 0 {
		cycle = 1
	}
	for {
		if alive != nil {
			if err := alive.Err(); err != nil {
				return zero, err
			}
		}
		// Fast path: bounded direct attempts. An available element wins
		// over an already-expired ctx — the element is there; take it.
		for i := 0; i < spin; i++ {
			if v, ok := q.Dequeue(tid); ok {
				return v, nil
			}
			if g.lc.Closed() {
				return drain(ctx, g, q, tid)
			}
			runtime.Gosched()
		}
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		// Slow path: register, then recheck — an element published
		// before our registration became visible must be caught here;
		// one published after it will bump the sequence and void the key.
		key := g.ec.Register()
		yield.At(yield.WQPrepare, tid, -1)
		for i := 0; i < cycle; i++ {
			if v, ok := q.Dequeue(tid); ok {
				g.ec.Unregister()
				return v, nil
			}
		}
		if g.lc.Closed() {
			g.ec.Unregister()
			return drain(ctx, g, q, tid)
		}
		if err := g.ec.Wait(ctx, key, tid); err != nil {
			return zero, err
		}
	}
}

// DequeueBatchCtx is DequeueCtx moving elements in groups: it blocks
// until at least one element is obtained (n > 0 implies err == nil),
// the queue closes and drains (0, ErrClosed), ctx ends, or the liveness
// fails. A recheck makes enough DequeueBatch calls to cover at least
// cycle probes.
func DequeueBatchCtx[T any](ctx context.Context, g *Gate, q BatchSource[T], alive Liveness, tid, spin, cycle int, dst []T) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if spin <= 0 {
		spin = DefaultSpin
	}
	if cycle <= 0 {
		cycle = 1
	}
	recheck := (cycle + len(dst) - 1) / len(dst)
	if recheck < 1 {
		recheck = 1
	}
	for {
		if alive != nil {
			if err := alive.Err(); err != nil {
				return 0, err
			}
		}
		for i := 0; i < spin; i++ {
			if n := q.DequeueBatch(tid, dst); n > 0 {
				return n, nil
			}
			if g.lc.Closed() {
				return drainBatch(ctx, g, q, tid, dst)
			}
			runtime.Gosched()
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		key := g.ec.Register()
		yield.At(yield.WQPrepare, tid, -1)
		for i := 0; i < recheck; i++ {
			if n := q.DequeueBatch(tid, dst); n > 0 {
				g.ec.Unregister()
				return n, nil
			}
		}
		if g.lc.Closed() {
			g.ec.Unregister()
			return drainBatch(ctx, g, q, tid, dst)
		}
		if err := g.ec.Wait(ctx, key, tid); err != nil {
			return 0, err
		}
	}
}

// drain is the closed-queue endgame: wait for enqueue quiescence (the
// closer is still collecting in-flight enqueues until then), then keep
// probing until an element appears or emptiness is proven final.
// Elements remain dequeuable after Close; only a provably drained queue
// returns ErrClosed.
func drain[T any](ctx context.Context, g *Gate, q Source[T], tid int) (T, error) {
	var zero T
	awaitQuiesced(g)
	for {
		if v, ok := q.Dequeue(tid); ok {
			return v, nil
		}
		if q.Drained() {
			return zero, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		runtime.Gosched()
	}
}

func drainBatch[T any](ctx context.Context, g *Gate, q BatchSource[T], tid int, dst []T) (int, error) {
	awaitQuiesced(g)
	for {
		if n := q.DequeueBatch(tid, dst); n > 0 {
			return n, nil
		}
		if q.Drained() {
			return 0, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		runtime.Gosched()
	}
}

// awaitQuiesced spins until the closer published quiescence. Each spin
// is bounded by the tail of one non-blocking enqueue call, so this is
// short; it cannot park because no notify is promised for it.
func awaitQuiesced(g *Gate) {
	for !g.lc.Quiesced() {
		runtime.Gosched()
	}
}
