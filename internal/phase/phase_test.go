package phase

import (
	"sort"
	"sync"
	"testing"
)

func TestCASMonotoneSequential(t *testing.T) {
	p := NewCAS()
	prev := int64(0)
	for i := 0; i < 1000; i++ {
		ph := p.Next()
		if ph < prev {
			t.Fatalf("phase went backwards: %d after %d", ph, prev)
		}
		if ph != prev+1 {
			t.Fatalf("sequential CAS provider must increment by 1: %d after %d", ph, prev)
		}
		prev = ph
	}
}

func TestFAAUniqueSequential(t *testing.T) {
	p := NewFAA()
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		ph := p.Next()
		if seen[ph] {
			t.Fatalf("FAA repeated phase %d", ph)
		}
		seen[ph] = true
	}
}

// TestDoorwayProperty checks the property wait-freedom rests on (§3.1,
// §5.3): a Next() that begins after another Next() returned yields a value
// >= the earlier one. We check the concurrent-safety half operationally:
// under heavy concurrency the counter never decreases between successive
// calls of one goroutine.
func TestDoorwayProperty(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    Provider
	}{
		{"CAS", NewCAS()},
		{"FAA", NewFAA()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const workers = 8
			const perWorker = 20000
			var wg sync.WaitGroup
			errs := make(chan string, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					prev := int64(-1)
					for i := 0; i < perWorker; i++ {
						ph := tc.p.Next()
						if ph < prev {
							errs <- "phase decreased within one thread"
							return
						}
						prev = ph
					}
				}()
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
		})
	}
}

// TestFAAConcurrentUnique: the FAA provider must give every concurrent
// caller a distinct phase (the stronger guarantee it advertises over CAS).
func TestFAAConcurrentUnique(t *testing.T) {
	p := NewFAA()
	const workers = 8
	const perWorker = 20000
	out := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := make([]int64, perWorker)
			for i := range vals {
				vals[i] = p.Next()
			}
			out[w] = vals
		}(w)
	}
	wg.Wait()
	var all []int64
	for _, vs := range out {
		all = append(all, vs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			t.Fatalf("duplicate phase %d from FAA", all[i])
		}
	}
}

// TestCASAllowsSharedPhases documents the CAS provider's contract from
// footnote 3: concurrent callers MAY receive equal phases, but the
// counter still advances — after k serialized calls the value is k.
func TestCASAllowsSharedPhases(t *testing.T) {
	p := NewCAS()
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p.Next()
			}
		}()
	}
	wg.Wait()
	// After the storm, a fresh call must return a positive phase no
	// larger than total calls + 1.
	ph := p.Next()
	if ph <= 0 || ph > workers*perWorker+1 {
		t.Fatalf("implausible phase after concurrent use: %d", ph)
	}
}

func TestFixed(t *testing.T) {
	p := Fixed(42)
	for i := 0; i < 3; i++ {
		if ph := p.Next(); ph != 42 {
			t.Fatalf("Fixed returned %d", ph)
		}
	}
}

// TestWrapped pins the §3.3 64-bit wrap guard's boundary semantics: the
// state array's -1 "nothing published yet" sentinel and every certified
// phase up to MaxSafe are sane; anything below -1 (which a wrapped
// int64 phase would produce) or beyond MaxSafe trips the guard while
// the doorway comparisons are still years from actually inverting.
func TestWrapped(t *testing.T) {
	for _, p := range []int64{-1, 0, 1, 1 << 40, MaxSafe} {
		if Wrapped(p) {
			t.Errorf("Wrapped(%d) = true, want false", p)
		}
	}
	for _, p := range []int64{-2, MaxSafe + 1, -(1 << 62), minInt64()} {
		if !Wrapped(p) {
			t.Errorf("Wrapped(%d) = false, want true", p)
		}
	}
}

// minInt64 dodges the overflow vet warning a -(1<<63) literal raises.
func minInt64() int64 { return -1 << 63 }

func BenchmarkCASNext(b *testing.B) {
	p := NewCAS()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p.Next()
		}
	})
}

func BenchmarkFAANext(b *testing.B) {
	p := NewFAA()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p.Next()
		}
	})
}
