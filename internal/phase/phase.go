// Package phase implements the phase-number providers of §3.3 of the
// paper.
//
// Every operation on the wait-free queue first chooses a phase number that
// is strictly greater than the phase of any operation whose choice
// completed earlier — the "doorway" of Lamport's Bakery algorithm. The base
// algorithm computes it by scanning the state array (maxPhase()+1); the
// second optimization replaces the scan with a shared counter bumped by CAS
// or fetch-and-add. This package provides the counter flavours; the scan
// flavour lives in internal/core because it needs access to the state
// array itself.
package phase

import "sync/atomic"

// Provider hands out monotonically non-decreasing phase numbers such that
// a Next() call that starts after another Next() call returned observes a
// value at least as large. Implementations must be safe for concurrent use
// by any number of goroutines and must be wait-free.
type Provider interface {
	// Next returns the phase number to use for a new operation.
	Next() int64
}

// CAS is the CAS-bumped counter of §3.3: each thread reads the counter,
// and tries to install value+1 with a single compare-and-swap. Per
// footnote 3 of the paper, the thread does not retry on failure — a failed
// CAS means some concurrent thread installed the same value, and sharing a
// phase number with a concurrent operation is harmless (helping is keyed
// on "phase <= mine", and the doorway argument only needs operations that
// are strictly later to get strictly larger phases).
type CAS struct {
	c atomic.Int64
}

// NewCAS returns a CAS provider starting at phase 1.
func NewCAS() *CAS { return &CAS{} }

// Next implements Provider. Exactly one CAS attempt: wait-free with a
// constant step bound.
func (p *CAS) Next() int64 {
	cur := p.c.Load()
	p.c.CompareAndSwap(cur, cur+1)
	return cur + 1
}

// FAA is the fetch-and-add alternative mentioned in §3.3. Every caller
// receives a distinct phase number. On machines with a native atomic add
// (amd64 XADD, arm64 LDADD) this is both wait-free and contention-optimal.
type FAA struct {
	c atomic.Int64
}

// NewFAA returns an FAA provider starting at phase 1.
func NewFAA() *FAA { return &FAA{} }

// Next implements Provider.
func (p *FAA) Next() int64 { return p.c.Add(1) }

// Fixed always returns the same phase. It exists for tests that need to
// force phase collisions deterministically.
type Fixed int64

// Next implements Provider.
func (f Fixed) Next() int64 { return int64(f) }

// MaxSafe is the largest phase number the algorithms are certified for.
// Phases are int64 and only ever increase, so the practical concern is
// signed overflow: past 2^63-1 a phase wraps negative and every
// "phase <= mine" helping comparison inverts — pending operations with
// huge positive phases would be judged "later" than every new operation
// and never helped, silently breaking the doorway ordering (and with it
// the wait-freedom argument of §3.2). MaxSafe is set a factor of two
// under the overflow line so the guard fires while arithmetic is still
// exact. At 10^9 operations per second a queue reaches MaxSafe after
// ~146 years; the guard exists so that a future change (a provider
// seeded wrong, a widened phase stride) fails loudly in tests rather
// than corrupting helping order.
const MaxSafe int64 = 1 << 62

// Wrapped reports whether phase p is outside the certified range —
// below -1 (provider phases start at 1, and -1 is only ever the state
// array's "no operation published yet" sentinel, so anything lower
// means overflow already happened) or beyond MaxSafe (close enough
// that upcoming arithmetic could overflow). The chaos watchdog asserts
// !Wrapped on every queue's maximum observed phase.
func Wrapped(p int64) bool { return p < -1 || p > MaxSafe }
