package lincheck

import (
	"testing"
	"testing/quick"

	"wfq/internal/model"
)

// bruteCheck decides linearizability by enumerating every permutation of
// the history that respects real-time order and replaying it against the
// model — exponential, usable only for tiny histories, and obviously
// correct. It is the oracle the production checker is fuzzed against.
func bruteCheck(hist []Op, initial []int64) Result {
	n := len(hist)
	used := make([]bool, n)
	var rec func(spec *model.Queue, done int) bool
	rec = func(spec *model.Queue, done int) bool {
		if done == n {
			return true
		}
		// minRes among pending ops bounds which ops may go next.
		minRes := int64(1<<63 - 1)
		for i, op := range hist {
			if !used[i] && op.Res < minRes {
				minRes = op.Res
			}
		}
		for i, op := range hist {
			if used[i] || op.Inv > minRes {
				continue
			}
			var next *model.Queue
			switch {
			case op.Kind == Enq:
				next = spec.Clone()
				next.Enqueue(op.Arg)
			case op.OK:
				if v, ok := spec.Peek(); ok && v == op.Ret {
					next = spec.Clone()
					next.Dequeue()
				}
			default:
				if spec.Empty() {
					next = spec
				}
			}
			if next == nil {
				continue
			}
			used[i] = true
			if rec(next, done+1) {
				used[i] = false
				return true
			}
			used[i] = false
		}
		return false
	}
	spec := &model.Queue{}
	for _, v := range initial {
		spec.Enqueue(v)
	}
	if rec(spec, 0) {
		return Linearizable
	}
	return NotLinearizable
}

// genHistory decodes fuzz bytes into a small well-formed history: random
// op kinds, arguments, results, and interval endpoints.
func genHistory(data []byte) []Op {
	const maxOps = 6
	var hist []Op
	clock := int64(1)
	// First pass: create ops with invocation times.
	for i := 0; i+3 < len(data) && len(hist) < maxOps; i += 4 {
		op := Op{ID: len(hist), TID: int(data[i]) % 3}
		switch data[i+1] % 3 {
		case 0:
			op.Kind = Enq
			op.Arg = int64(data[i+2] % 4)
			op.OK = true
		case 1:
			op.Kind = Deq
			op.OK = true
			op.Ret = int64(data[i+2] % 4)
		default:
			op.Kind = Deq
			op.OK = false
		}
		op.Inv = clock
		clock++
		// Response offset: small, so intervals overlap sometimes.
		op.Res = op.Inv + 1 + int64(data[i+3]%8)
		hist = append(hist, op)
	}
	// Make timestamps unique-ish by spreading responses.
	seen := map[int64]bool{}
	for i := range hist {
		for seen[hist[i].Res] || hist[i].Res <= hist[i].Inv {
			hist[i].Res++
		}
		seen[hist[i].Res] = true
	}
	return hist
}

func FuzzCheckerVsBruteForce(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 1, 1, 1, 0})
	f.Add([]byte{0, 0, 1, 0, 0, 1, 1, 0, 1, 2, 0, 0})
	f.Add([]byte{2, 1, 3, 7, 0, 0, 2, 1, 1, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		hist := genHistory(data)
		if len(hist) == 0 {
			return
		}
		initial := []int64{}
		if len(data) > 0 && data[0]%2 == 0 {
			initial = []int64{1}
		}
		var c Checker
		got, err := c.CheckFrom(hist, initial)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteCheck(hist, initial)
		if got != want {
			t.Fatalf("checker=%v brute=%v for history %v (initial %v)", got, want, hist, initial)
		}
	})
}

// TestCheckerVsBruteForceQuick runs the same differential via
// testing/quick so it exercises in ordinary `go test` runs at volume.
func TestCheckerVsBruteForceQuick(t *testing.T) {
	if err := quick.Check(func(data []byte) bool {
		hist := genHistory(data)
		initial := []int64{}
		if len(data) > 2 && data[1]%3 == 0 {
			initial = []int64{int64(data[2] % 4)}
		}
		var c Checker
		got, err := c.CheckFrom(hist, initial)
		if err != nil {
			return false
		}
		return got == bruteCheck(hist, initial)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
