package lincheck

import (
	"sync"
	"testing"

	"wfq/internal/core"
	"wfq/internal/xrand"
)

// recordHistory drives threads workers over q with a seeded random
// enq/deq mix and returns the flattened history.
func recordHistory(q interface {
	Enqueue(tid int, v int64)
	Dequeue(tid int) (int64, bool)
}, threads, ops int, seed uint64) []Op {
	rec := NewRecorder(threads, ops)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := xrand.New(seed*7919 + uint64(tid))
			for i := 0; i < ops; i++ {
				if rng.Bool() {
					v := int64(tid)<<32 | int64(i)
					tok := rec.BeginEnq(tid, v)
					q.Enqueue(tid, v)
					rec.EndEnq(tok)
				} else {
					tok := rec.BeginDeq(tid)
					v, ok := q.Dequeue(tid)
					rec.EndDeq(tok, v, ok)
				}
			}
		}(w)
	}
	wg.Wait()
	return rec.History()
}

// TestFastVariantHistoriesLinearizable is the differential lincheck
// coverage for the fast-path/slow-path engine: genuinely concurrent
// histories from VariantFast — where fast lock-free operations race the
// wait-free helping machinery — must linearize against the FIFO spec.
// Both the GC and the hazard-pointer builds are covered; a patience of 1
// maximizes fast/slow mixing (almost every contended op falls back).
func TestFastVariantHistoriesLinearizable(t *testing.T) {
	const threads, ops, rounds = 4, 12, 12
	builders := map[string]func() interface {
		Enqueue(tid int, v int64)
		Dequeue(tid int) (int64, bool)
	}{
		"fast": func() interface {
			Enqueue(tid int, v int64)
			Dequeue(tid int) (int64, bool)
		} {
			return core.New[int64](threads, core.WithFastPath(0))
		},
		"fast-patience1": func() interface {
			Enqueue(tid int, v int64)
			Dequeue(tid int) (int64, bool)
		} {
			return core.New[int64](threads, core.WithFastPath(1))
		},
		"fast-hp": func() interface {
			Enqueue(tid int, v int64)
			Dequeue(tid int) (int64, bool)
		} {
			return core.NewHP[int64](threads, 0, 0, core.WithFastPath(0))
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			for r := 0; r < rounds; r++ {
				hist := recordHistory(build(), threads, ops, uint64(r)+1)
				var c Checker
				res, err := c.Check(hist)
				if err != nil {
					t.Fatal(err)
				}
				if res == NotLinearizable {
					t.Fatalf("round %d: history not linearizable:\n%v", r, hist)
				}
			}
		})
	}
}
