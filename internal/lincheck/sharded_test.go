package lincheck

import "testing"

// op builds a history entry tersely for the CheckSharded unit tests.
func op(id, tid int, kind Kind, arg, ret int64, ok bool, shard int, inv, res int64) Op {
	return Op{ID: id, TID: tid, Kind: kind, Arg: arg, Ret: ret, OK: ok, Shard: shard, Inv: inv, Res: res}
}

// TestCheckShardedAcceptsCrossShardReordering: a history that is NOT
// linearizable as one FIFO — the second-enqueued value is dequeued first
// by non-overlapping dequeues — but is legal for the bag-of-FIFOs spec
// because the two values live in different shards.
func TestCheckShardedAcceptsCrossShardReordering(t *testing.T) {
	hist := []Op{
		op(0, 0, Enq, 10, 0, true, 0, 1, 2), // enq 10 -> shard 0
		op(1, 1, Enq, 20, 0, true, 1, 3, 4), // enq 20 -> shard 1
		op(2, 2, Deq, 0, 20, true, 1, 5, 6), // deq = 20 (shard 1) first
		op(3, 3, Deq, 0, 10, true, 0, 7, 8), // deq = 10 (shard 0) after
	}
	var c Checker
	if res, err := c.Check(hist); err != nil || res != NotLinearizable {
		t.Fatalf("single-FIFO check = (%v,%v), want NOT linearizable", res, err)
	}
	if res, err := c.CheckSharded(hist); err != nil || res != Linearizable {
		t.Fatalf("sharded check = (%v,%v), want linearizable", res, err)
	}
}

// TestCheckShardedRejectsIntraShardReordering: FIFO inversion between two
// non-overlapping operations on the SAME shard must still fail.
func TestCheckShardedRejectsIntraShardReordering(t *testing.T) {
	hist := []Op{
		op(0, 0, Enq, 10, 0, true, 0, 1, 2),
		op(1, 1, Enq, 30, 0, true, 0, 3, 4), // same shard, later
		op(2, 2, Deq, 0, 30, true, 0, 5, 6), // 30 before 10: illegal
		op(3, 3, Deq, 0, 10, true, 0, 7, 8),
	}
	var c Checker
	if res, err := c.CheckSharded(hist); err != nil || res != NotLinearizable {
		t.Fatalf("sharded check = (%v,%v), want NOT linearizable", res, err)
	}
}

// TestCheckShardedEmptyIsPerShard: a deq-empty is legal exactly when its
// own shard was empty, regardless of elements elsewhere.
func TestCheckShardedEmptyIsPerShard(t *testing.T) {
	hist := []Op{
		op(0, 0, Enq, 10, 0, true, 0, 1, 2), // shard 0 holds 10
		op(1, 1, Deq, 0, 0, false, 1, 3, 4), // shard 1 empty: legal
		op(2, 2, Deq, 0, 10, true, 0, 5, 6),
	}
	var c Checker
	if res, err := c.CheckSharded(hist); err != nil || res != Linearizable {
		t.Fatalf("sharded check = (%v,%v), want linearizable", res, err)
	}
	// The same empty claimed against the non-empty shard 0 is illegal:
	// shard 0's subhistory becomes enq(10); deq()=empty; deq()=10 with
	// disjoint intervals.
	bad := []Op{hist[0], op(1, 1, Deq, 0, 0, false, 0, 3, 4), hist[2]}
	if res, err := c.CheckSharded(bad); err != nil || res != NotLinearizable {
		t.Fatalf("sharded check = (%v,%v), want NOT linearizable", res, err)
	}
}

// TestCheckShardedRequiresTags: untagged ops are a recorder bug, not a
// queue bug.
func TestCheckShardedRequiresTags(t *testing.T) {
	hist := []Op{op(0, 0, Enq, 1, 0, true, -1, 1, 2)}
	var c Checker
	if _, err := c.CheckSharded(hist); err == nil {
		t.Fatal("untagged history accepted")
	}
}

// TestCheckShardedEmptyHistory is the trivial base case.
func TestCheckShardedEmptyHistory(t *testing.T) {
	var c Checker
	if res, err := c.CheckSharded(nil); err != nil || res != Linearizable {
		t.Fatalf("(%v,%v)", res, err)
	}
}
