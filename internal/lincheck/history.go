// Package lincheck records concurrent queue histories and decides whether
// they are linearizable with respect to the sequential FIFO specification
// (internal/model).
//
// Linearizability (Herlihy & Wing 1990) is the correctness condition the
// paper proves for its queue in §5. This package provides the machinery to
// check it mechanically on real executions: a low-overhead Recorder that
// workers call around each operation, and a Checker implementing the
// Wing–Gong search with the memoization of Lowe ("Testing for
// linearizability", CCPE 2017): depth-first enumeration of linearization
// orders, pruned by a seen-set keyed on (linearized-set, spec state).
package lincheck

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Kind distinguishes the two queue operations.
type Kind uint8

// Operation kinds.
const (
	Enq Kind = iota
	Deq
)

// String returns "enq" or "deq".
func (k Kind) String() string {
	if k == Enq {
		return "enq"
	}
	return "deq"
}

// Op is one completed operation in a history.
type Op struct {
	// ID is the operation's index in the flattened history.
	ID int
	// TID is the recording thread.
	TID int
	// Kind is Enq or Deq.
	Kind Kind
	// Arg is the enqueued value (Enq only).
	Arg int64
	// Ret is the dequeued value (Deq with OK=true only).
	Ret int64
	// OK is false for a Deq that observed an empty queue.
	OK bool
	// Shard is the shard a sharded frontend dispatched the operation to
	// (ticket mod shard count), or -1 for an unsharded history. Set via
	// Recorder.SetShard; consumed by Checker.CheckSharded.
	Shard int
	// Inv and Res are the invocation and response timestamps drawn
	// from a single global atomic clock, so cross-thread event order
	// is a legal real-time order.
	Inv, Res int64
}

func (o Op) String() string {
	switch {
	case o.Kind == Enq:
		return fmt.Sprintf("t%d enq(%d) @[%d,%d]", o.TID, o.Arg, o.Inv, o.Res)
	case o.OK:
		return fmt.Sprintf("t%d deq()=%d @[%d,%d]", o.TID, o.Ret, o.Inv, o.Res)
	default:
		return fmt.Sprintf("t%d deq()=empty @[%d,%d]", o.TID, o.Inv, o.Res)
	}
}

// Recorder collects per-thread operation logs with a shared logical clock.
// Workers call BeginEnq/BeginDeq immediately before invoking the queue and
// the matching End immediately after it returns. Each thread must use its
// own tid; a thread's calls must be sequential.
type Recorder struct {
	clock atomic.Int64
	logs  []threadLog
}

type threadLog struct {
	ops []Op
	_   [64]byte // keep threads' append targets off each other's lines
}

// NewRecorder creates a recorder for nthreads threads, each expected to
// record about opsPerThread operations (a capacity hint).
func NewRecorder(nthreads, opsPerThread int) *Recorder {
	r := &Recorder{logs: make([]threadLog, nthreads)}
	for i := range r.logs {
		r.logs[i].ops = make([]Op, 0, opsPerThread)
	}
	return r
}

// Now draws a fresh timestamp from the recorder's global clock — for
// stamping events that are not queue operations (a Close invocation and
// response, say) on the same real-time order the recorded history uses,
// so tests can phrase cross-event linearization claims ("no successful
// enqueue was invoked after Close returned") against one clock.
func (r *Recorder) Now() int64 { return r.clock.Add(1) }

// Token identifies an in-flight operation between Begin and End.
type Token struct {
	tid, idx int
}

// BeginEnq records the invocation of enq(arg) by tid.
func (r *Recorder) BeginEnq(tid int, arg int64) Token {
	l := &r.logs[tid]
	l.ops = append(l.ops, Op{TID: tid, Kind: Enq, Arg: arg, Shard: -1, Inv: r.clock.Add(1)})
	return Token{tid: tid, idx: len(l.ops) - 1}
}

// BeginDeq records the invocation of deq() by tid.
func (r *Recorder) BeginDeq(tid int) Token {
	l := &r.logs[tid]
	l.ops = append(l.ops, Op{TID: tid, Kind: Deq, Shard: -1, Inv: r.clock.Add(1)})
	return Token{tid: tid, idx: len(l.ops) - 1}
}

// SetShard tags the in-flight operation identified by t with the shard
// the dispatcher routed it to. Call between Begin and End, from the
// recording thread.
func (r *Recorder) SetShard(t Token, shard int) {
	r.logs[t.tid].ops[t.idx].Shard = shard
}

// EndEnq records the response of the enqueue identified by t.
func (r *Recorder) EndEnq(t Token) {
	op := &r.logs[t.tid].ops[t.idx]
	op.OK = true
	op.Res = r.clock.Add(1)
}

// EndDeq records the response of the dequeue identified by t.
func (r *Recorder) EndDeq(t Token, ret int64, ok bool) {
	op := &r.logs[t.tid].ops[t.idx]
	op.Ret, op.OK = ret, ok
	op.Res = r.clock.Add(1)
}

// History flattens the per-thread logs into one history sorted by
// invocation time and assigns operation IDs. Call only after all workers
// finished; operations missing a response are dropped (a crashed worker's
// pending op may linearize or not — the checker here targets complete
// histories produced by joined workers).
func (r *Recorder) History() []Op {
	var all []Op
	for t := range r.logs {
		for _, op := range r.logs[t].ops {
			if op.Res != 0 {
				all = append(all, op)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Inv < all[j].Inv })
	for i := range all {
		all[i].ID = i
	}
	return all
}
