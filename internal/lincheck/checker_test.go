package lincheck

import (
	"sync"
	"testing"

	"wfq/internal/model"
	"wfq/internal/msqueue"
	"wfq/internal/xrand"
)

// mk builds an Op succinctly for hand-written histories.
func enq(tid int, arg int64, inv, res int64) Op {
	return Op{TID: tid, Kind: Enq, Arg: arg, OK: true, Inv: inv, Res: res}
}
func deqv(tid int, ret int64, inv, res int64) Op {
	return Op{TID: tid, Kind: Deq, Ret: ret, OK: true, Inv: inv, Res: res}
}
func deqe(tid int, inv, res int64) Op {
	return Op{TID: tid, Kind: Deq, OK: false, Inv: inv, Res: res}
}

func ids(hist []Op) []Op {
	for i := range hist {
		hist[i].ID = i
	}
	return hist
}

func mustCheck(t *testing.T, hist []Op, want Result) {
	t.Helper()
	var c Checker
	got, err := c.Check(hist)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %v, want %v for history %v", got, want, hist)
	}
}

func TestEmptyHistory(t *testing.T) {
	mustCheck(t, nil, Linearizable)
}

func TestSequentialLegal(t *testing.T) {
	mustCheck(t, ids([]Op{
		enq(0, 1, 1, 2),
		enq(0, 2, 3, 4),
		deqv(0, 1, 5, 6),
		deqv(0, 2, 7, 8),
		deqe(0, 9, 10),
	}), Linearizable)
}

func TestSequentialWrongOrder(t *testing.T) {
	// FIFO violated: 2 dequeued before 1.
	mustCheck(t, ids([]Op{
		enq(0, 1, 1, 2),
		enq(0, 2, 3, 4),
		deqv(0, 2, 5, 6),
	}), NotLinearizable)
}

func TestSequentialLostValue(t *testing.T) {
	// deq returns a value never enqueued.
	mustCheck(t, ids([]Op{
		enq(0, 1, 1, 2),
		deqv(0, 9, 3, 4),
	}), NotLinearizable)
}

func TestSequentialPrematureEmpty(t *testing.T) {
	// Empty reported while an element was definitely in the queue.
	mustCheck(t, ids([]Op{
		enq(0, 1, 1, 2),
		deqe(0, 3, 4),
	}), NotLinearizable)
}

func TestConcurrentOverlapLegal(t *testing.T) {
	// Two overlapping enqueues followed by dequeues that pick one of
	// the two legal orders.
	mustCheck(t, ids([]Op{
		enq(0, 1, 1, 5),
		enq(1, 2, 2, 4), // overlaps with the first
		deqv(0, 2, 6, 7),
		deqv(1, 1, 8, 9),
	}), Linearizable)
}

func TestConcurrentEmptyLegal(t *testing.T) {
	// deq()=empty overlapping an enqueue may linearize before it.
	mustCheck(t, ids([]Op{
		enq(0, 1, 1, 10),
		deqe(1, 2, 3), // entirely inside the enqueue window
		deqv(1, 1, 11, 12),
	}), Linearizable)
}

func TestRealTimeOrderRespected(t *testing.T) {
	// enq(1) completed strictly before enq(2) started; dequeuing 2
	// before 1 is NOT linearizable.
	mustCheck(t, ids([]Op{
		enq(0, 1, 1, 2),
		enq(1, 2, 3, 4),
		deqv(0, 2, 5, 6),
		deqv(1, 1, 7, 8),
	}), NotLinearizable)
}

func TestDuplicateDelivery(t *testing.T) {
	mustCheck(t, ids([]Op{
		enq(0, 1, 1, 2),
		deqv(0, 1, 3, 4),
		deqv(1, 1, 5, 6), // same value delivered twice
	}), NotLinearizable)
}

func TestCheckFromInitialState(t *testing.T) {
	var c Checker
	hist := ids([]Op{deqv(0, 7, 1, 2)})
	got, err := c.CheckFrom(hist, []int64{7, 8})
	if err != nil || got != Linearizable {
		t.Fatalf("(%v,%v)", got, err)
	}
	got, err = c.CheckFrom(hist, []int64{8, 7})
	if err != nil || got != NotLinearizable {
		t.Fatalf("wrong head accepted: (%v,%v)", got, err)
	}
}

func TestMalformedHistory(t *testing.T) {
	var c Checker
	_, err := c.Check([]Op{{Kind: Enq, Arg: 1, Inv: 5, Res: 2}})
	if err == nil {
		t.Fatal("malformed history accepted")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// A large all-overlapping history forces a huge search; a tiny
	// budget must yield Unknown, not a wrong verdict.
	var hist []Op
	n := 12
	for i := 0; i < n; i++ {
		hist = append(hist, enq(i, int64(i), 1, 100))
	}
	for i := 0; i < n; i++ {
		hist = append(hist, deqv(i, int64(n-1-i), 101, 200)) // reverse order: illegal...
	}
	c := Checker{Budget: 50}
	got, err := c.Check(ids(hist))
	if err != nil {
		t.Fatal(err)
	}
	if got != Unknown {
		t.Fatalf("tiny budget returned %v", got)
	}
}

func TestWitnessOrder(t *testing.T) {
	var witness []int
	c := Checker{Witness: &witness}
	hist := ids([]Op{
		enq(0, 1, 1, 2),
		deqv(1, 1, 3, 4),
	})
	got, err := c.Check(hist)
	if err != nil || got != Linearizable {
		t.Fatalf("(%v,%v)", got, err)
	}
	if len(witness) != 2 || witness[0] != 0 || witness[1] != 1 {
		t.Fatalf("witness %v", witness)
	}
}

// TestWitnessReplaysLegally: the witness order returned by the checker
// must itself be a legal sequential execution that respects real-time
// order — the certificate is checked, not just produced.
func TestWitnessReplaysLegally(t *testing.T) {
	hist := ids([]Op{
		enq(0, 1, 1, 5),
		enq(1, 2, 2, 4),
		deqv(0, 2, 6, 7),
		deqv(1, 1, 8, 9),
		deqe(0, 10, 11),
	})
	var witness []int
	c := Checker{Witness: &witness}
	res, err := c.Check(hist)
	if err != nil || res != Linearizable {
		t.Fatalf("(%v,%v)", res, err)
	}
	if len(witness) != len(hist) {
		t.Fatalf("witness %v misses ops", witness)
	}
	byID := make(map[int]Op, len(hist))
	for _, op := range hist {
		byID[op.ID] = op
	}
	// Replay against the model.
	var spec model.Queue
	for _, id := range witness {
		op, ok := byID[id]
		if !ok {
			t.Fatalf("witness names unknown op %d", id)
		}
		delete(byID, id)
		switch {
		case op.Kind == Enq:
			spec.Enqueue(op.Arg)
		case op.OK:
			v, ok := spec.Dequeue()
			if !ok || v != op.Ret {
				t.Fatalf("witness illegal at %v: got (%d,%v)", op, v, ok)
			}
		default:
			if !spec.Empty() {
				t.Fatalf("witness illegal at %v: queue not empty", op)
			}
		}
	}
	// Real-time order: op A wholly before op B must precede it.
	pos := make(map[int]int, len(witness))
	for i, id := range witness {
		pos[id] = i
	}
	for _, a := range hist {
		for _, b := range hist {
			if a.Res < b.Inv && pos[a.ID] > pos[b.ID] {
				t.Fatalf("witness violates real-time order: %v after %v", a, b)
			}
		}
	}
}

func TestResultString(t *testing.T) {
	if Linearizable.String() == "" || NotLinearizable.String() == "" || Unknown.String() == "" {
		t.Fatal("empty result strings")
	}
	if Linearizable.String() == NotLinearizable.String() {
		t.Fatal("indistinct result strings")
	}
}

// TestRecorderRoundTrip drives the recorder exactly as harness workers do.
func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(2, 4)
	tok := r.BeginEnq(0, 5)
	r.EndEnq(tok)
	tok = r.BeginDeq(1)
	r.EndDeq(tok, 5, true)
	tok = r.BeginDeq(0)
	r.EndDeq(tok, 0, false)
	hist := r.History()
	if len(hist) != 3 {
		t.Fatalf("history %v", hist)
	}
	for i, op := range hist {
		if op.ID != i || op.Inv >= op.Res {
			t.Fatalf("bad op %v", op)
		}
	}
	mustCheck(t, hist, Linearizable)
}

func TestRecorderDropsUnfinished(t *testing.T) {
	r := NewRecorder(1, 2)
	r.BeginEnq(0, 1) // never ended
	tok := r.BeginEnq(0, 2)
	r.EndEnq(tok)
	hist := r.History()
	if len(hist) != 1 || hist[0].Arg != 2 {
		t.Fatalf("history %v", hist)
	}
}

func TestOpString(t *testing.T) {
	ops := []Op{enq(0, 1, 1, 2), deqv(1, 2, 3, 4), deqe(2, 5, 6)}
	seen := map[string]bool{}
	for _, op := range ops {
		s := op.String()
		if s == "" || seen[s] {
			t.Fatalf("bad op string %q", s)
		}
		seen[s] = true
	}
}

// TestLiveMSQueueHistoryLinearizable records a genuinely concurrent run
// of the Michael–Scott queue and checks it — the recorder+checker stack
// working end to end on a real data structure.
func TestLiveMSQueueHistoryLinearizable(t *testing.T) {
	const workers = 4
	const opsEach = 60
	q := msqueue.New[int64]()
	rec := NewRecorder(workers, opsEach)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := xrand.New(uint64(tid) + 99)
			for i := 0; i < opsEach; i++ {
				if rng.Bool() {
					v := int64(tid*1000 + i)
					tok := rec.BeginEnq(tid, v)
					q.Enqueue(v)
					rec.EndEnq(tok)
				} else {
					tok := rec.BeginDeq(tid)
					v, ok := q.Dequeue()
					rec.EndDeq(tok, v, ok)
				}
			}
		}(w)
	}
	wg.Wait()
	var c Checker
	res, err := c.Check(rec.History())
	if err != nil {
		t.Fatal(err)
	}
	if res != Linearizable {
		t.Fatalf("live MS-queue history: %v", res)
	}
}

// TestDetectsBuggyQueue: a deliberately broken "queue" (LIFO) must be
// caught by the checker on histories that expose the inversion.
func TestDetectsBuggyQueue(t *testing.T) {
	// Sequential LIFO history: enq 1, enq 2, deq->2. Not FIFO.
	mustCheck(t, ids([]Op{
		enq(0, 1, 1, 2),
		enq(0, 2, 3, 4),
		deqv(0, 2, 5, 6),
		deqv(0, 1, 7, 8),
	}), NotLinearizable)
}
