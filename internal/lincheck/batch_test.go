package lincheck

import (
	"sync"
	"testing"

	"wfq/internal/core"
	"wfq/internal/xrand"
)

// batchQueue is the contract the batch lincheck tests drive.
type batchQueue interface {
	Enqueue(tid int, v int64)
	Dequeue(tid int) (int64, bool)
	EnqueueBatch(tid int, vs []int64)
	DequeueBatch(tid int, dst []int64) int
}

// recordBatchHistory drives threads workers over q with a seeded mix of
// single and batch operations. A batch call is recorded as its individual
// element operations, every Begin before the call and every End after it:
// each element op's real-time window spans the whole batch call, which is
// exactly the freedom the linearizability definition grants — the checker
// must then find SOME order of the elements (for a contiguous batch
// enqueue, the in-batch order) that satisfies FIFO against everything
// concurrent.
func recordBatchHistory(q batchQueue, threads, ops, maxK int, seed uint64) []Op {
	rec := NewRecorder(threads, ops*maxK)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := xrand.New(seed*104729 + uint64(tid))
			toks := make([]Token, 0, maxK)
			vs := make([]int64, 0, maxK)
			dst := make([]int64, maxK)
			seq := 0
			for i := 0; i < ops; i++ {
				k := 2 + int(rng.Next()%uint64(maxK-1)) // batch width in [2, maxK]
				switch rng.Next() % 4 {
				case 0: // single enqueue
					v := int64(tid)<<32 | int64(seq)
					seq++
					tok := rec.BeginEnq(tid, v)
					q.Enqueue(tid, v)
					rec.EndEnq(tok)
				case 1: // single dequeue
					tok := rec.BeginDeq(tid)
					v, ok := q.Dequeue(tid)
					rec.EndDeq(tok, v, ok)
				case 2: // batch enqueue
					toks, vs = toks[:0], vs[:0]
					for j := 0; j < k; j++ {
						v := int64(tid)<<32 | int64(seq)
						seq++
						vs = append(vs, v)
						toks = append(toks, rec.BeginEnq(tid, v))
					}
					q.EnqueueBatch(tid, vs)
					for _, tok := range toks {
						rec.EndEnq(tok)
					}
				default: // batch dequeue
					toks = toks[:0]
					for j := 0; j < k; j++ {
						toks = append(toks, rec.BeginDeq(tid))
					}
					n := q.DequeueBatch(tid, dst[:k])
					for j, tok := range toks {
						if j < n {
							rec.EndDeq(tok, dst[j], true)
						} else {
							rec.EndDeq(tok, 0, false)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return rec.History()
}

// TestBatchHistoriesLinearizable is the lincheck coverage for the batch
// operations: concurrent histories mixing chained batch enqueues,
// multi-claim batch dequeues and singles must linearize against the
// single-FIFO specification on every core configuration whose batch code
// paths differ (slow chains, fast chains, arena nodes, hazard pointers).
func TestBatchHistoriesLinearizable(t *testing.T) {
	const threads, ops, maxK, rounds = 3, 6, 4, 10
	builders := map[string]func() batchQueue{
		"base": func() batchQueue {
			return core.New[int64](threads)
		},
		"fast": func() batchQueue {
			return core.New[int64](threads, core.WithFastPath(0))
		},
		"fast-patience1-arena": func() batchQueue {
			return core.New[int64](threads, core.WithFastPath(1), core.WithArena(0))
		},
		"fast-hp": func() batchQueue {
			return core.NewHP[int64](threads, 0, 0, core.WithFastPath(0))
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			for r := 0; r < rounds; r++ {
				hist := recordBatchHistory(build(), threads, ops, maxK, uint64(r)+1)
				var c Checker
				res, err := c.Check(hist)
				if err != nil {
					t.Fatal(err)
				}
				if res == NotLinearizable {
					t.Fatalf("round %d: batch history not linearizable:\n%v", r, hist)
				}
			}
		})
	}
}
