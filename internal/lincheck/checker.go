package lincheck

import (
	"encoding/binary"
	"errors"
	"fmt"

	"wfq/internal/model"
)

// Result is the outcome of a linearizability check.
type Result int

// Check outcomes.
const (
	// Linearizable: a witness linearization order exists.
	Linearizable Result = iota
	// NotLinearizable: the search space was exhausted with no witness.
	NotLinearizable
	// Unknown: the step budget ran out before a verdict.
	Unknown
)

// String names the result.
func (r Result) String() string {
	switch r {
	case Linearizable:
		return "linearizable"
	case NotLinearizable:
		return "NOT linearizable"
	default:
		return "unknown (budget exhausted)"
	}
}

// ErrBadHistory reports a structurally invalid history (e.g. a response
// before its invocation), which indicates a recorder bug rather than a
// queue bug.
var ErrBadHistory = errors.New("lincheck: malformed history")

// Checker runs the Wing–Gong linearizability search with Lowe-style
// memoization. Zero value is usable; set Budget to bound worst-case work.
type Checker struct {
	// Budget limits the number of DFS steps (candidate applications).
	// 0 means DefaultBudget. When exhausted the check returns Unknown.
	Budget int
	// Witness receives the linearization order found (operation IDs)
	// when the history is linearizable and Witness is non-nil.
	Witness *[]int
}

// DefaultBudget is the DFS step limit used when Checker.Budget is 0. It is
// generous: real linearizable queue histories of a few hundred operations
// check in well under this.
const DefaultBudget = 50_000_000

// Check decides linearizability of hist against the FIFO queue spec,
// starting from an empty queue.
func (c *Checker) Check(hist []Op) (Result, error) {
	return c.CheckFrom(hist, nil)
}

// CheckFrom decides linearizability of hist against the FIFO queue spec,
// starting from a queue pre-filled with initial (oldest first). This
// supports the 50%-enqueues benchmark, whose queue starts with 1000
// elements.
func (c *Checker) CheckFrom(hist []Op, initial []int64) (Result, error) {
	n := len(hist)
	if n == 0 {
		return Linearizable, nil
	}
	for _, op := range hist {
		if op.Res < op.Inv {
			return Unknown, fmt.Errorf("%w: op %v has response before invocation", ErrBadHistory, op)
		}
	}
	budget := c.Budget
	if budget == 0 {
		budget = DefaultBudget
	}

	spec := &model.Queue{}
	for _, v := range initial {
		spec.Enqueue(v)
	}

	s := &search{
		hist:   hist,
		done:   make([]bool, n),
		seen:   make(map[string]struct{}),
		budget: budget,
		order:  make([]int, 0, n),
	}
	ok, exhausted := s.dfs(spec, 0)
	switch {
	case ok:
		if c.Witness != nil {
			*c.Witness = append([]int(nil), s.order...)
		}
		return Linearizable, nil
	case exhausted:
		return Unknown, nil
	default:
		return NotLinearizable, nil
	}
}

// CheckSharded decides linearizability of hist against the sharded
// (bag-of-FIFOs) specification of internal/sharded: every operation
// carries the shard its dispatch ticket named (Op.Shard, recorded via
// Recorder.SetShard), the history is partitioned by shard, and each
// partition must independently linearize against the FIFO specification.
//
// This is exactly the sharded queue's contract — N independent
// linearizable FIFO shards behind a wait-free dispatcher whose ticket
// assignment is the observed Shard tag — and by the locality of
// linearizability (Herlihy & Wing 1990, Theorem 1: a history is
// linearizable iff each per-object subhistory is) checking the
// partitions separately is sound and complete for it. A deq that
// reported empty must have found ITS shard empty, which the per-shard
// FIFO check enforces; no cross-shard ordering is required, which the
// partitioning grants.
//
// The verdict is the worst across shards (NotLinearizable dominates
// Unknown dominates Linearizable); c.Witness is ignored. An operation
// with Shard < 0 is ErrBadHistory: sharded checking needs every op
// tagged.
func (c *Checker) CheckSharded(hist []Op) (Result, error) {
	parts := map[int][]Op{}
	for _, op := range hist {
		if op.Shard < 0 {
			return Unknown, fmt.Errorf("%w: op %v has no shard tag", ErrBadHistory, op)
		}
		parts[op.Shard] = append(parts[op.Shard], op)
	}
	sub := Checker{Budget: c.Budget}
	worst := Linearizable
	for _, part := range parts {
		res, err := sub.Check(part)
		if err != nil {
			return Unknown, err
		}
		switch {
		case res == NotLinearizable:
			return NotLinearizable, nil
		case res == Unknown:
			worst = Unknown
		}
	}
	return worst, nil
}

type search struct {
	hist   []Op
	done   []bool
	seen   map[string]struct{}
	budget int
	order  []int
	nDone  int
}

// dfs tries to linearize the remaining operations given the current spec
// state. ok reports success; exhausted reports that the budget ran out
// somewhere below (so a false ok is not a proof of non-linearizability).
func (s *search) dfs(spec *model.Queue, depth int) (ok, exhausted bool) {
	if s.nDone == len(s.hist) {
		return true, false
	}
	if s.budget <= 0 {
		return false, true
	}
	key := s.stateKey(spec)
	if _, dup := s.seen[key]; dup {
		return false, false
	}
	s.seen[key] = struct{}{}

	// minRes is the earliest response among pending (not yet
	// linearized) operations: any operation invoked after minRes cannot
	// be linearized before the op that owns minRes, so candidates are
	// exactly the pending ops with Inv < minRes (<= is safe because
	// timestamps are unique).
	minRes := int64(1<<63 - 1)
	for i, op := range s.hist {
		if !s.done[i] && op.Res < minRes {
			minRes = op.Res
		}
	}

	anyExhausted := false
	for i, op := range s.hist {
		if s.done[i] || op.Inv > minRes {
			continue
		}
		s.budget--
		// Apply op to a forked spec state if it is legal.
		var next *model.Queue
		switch {
		case op.Kind == Enq:
			next = spec.Clone()
			next.Enqueue(op.Arg)
		case op.OK:
			if v, okPeek := spec.Peek(); okPeek && v == op.Ret {
				next = spec.Clone()
				next.Dequeue()
			}
		default: // deq reported empty
			if spec.Empty() {
				next = spec // no state change; safe to share
			}
		}
		if next == nil {
			continue
		}
		s.done[i] = true
		s.nDone++
		s.order = append(s.order, op.ID)
		okBelow, exBelow := s.dfs(next, depth+1)
		if okBelow {
			return true, false
		}
		anyExhausted = anyExhausted || exBelow
		s.order = s.order[:len(s.order)-1]
		s.nDone--
		s.done[i] = false
		if s.budget <= 0 {
			return false, true
		}
	}
	return false, anyExhausted
}

// stateKey serializes (done-set, spec contents) exactly — no lossy
// hashing — so the memoization can never prune a genuinely new state.
func (s *search) stateKey(spec *model.Queue) string {
	words := (len(s.done) + 7) / 8
	buf := make([]byte, words+8*spec.Len()+8)
	for i, d := range s.done {
		if d {
			buf[i/8] |= 1 << (i % 8)
		}
	}
	off := words
	binary.LittleEndian.PutUint64(buf[off:], uint64(spec.Len()))
	off += 8
	for _, v := range spec.Snapshot() {
		binary.LittleEndian.PutUint64(buf[off:], uint64(v))
		off += 8
	}
	return string(buf)
}
