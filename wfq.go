// Package wfq is a wait-free multi-producer multi-consumer FIFO queue for
// Go — an implementation of Kogan & Petrank, "Wait-Free Queues With
// Multiple Enqueuers and Dequeuers" (PPoPP 2011), with the paper's
// optimizations, enhancements, and hazard-pointer memory-management
// variant, plus the baselines it was evaluated against.
//
// # Why wait-free
//
// Lock-free queues (Michael–Scott and its descendants) guarantee that
// SOME thread always makes progress, but any particular thread can starve
// indefinitely. This queue guarantees that EVERY operation completes in a
// bounded number of steps regardless of how other threads are scheduled —
// the property needed under real-time deadlines, SLAs, or badly skewed
// schedulers. The price is a helping protocol: faster threads finish the
// operations of slower ones.
//
// # Thread identities
//
// The algorithm requires each concurrently operating thread to hold a
// distinct small integer id below the bound passed to New. Two styles are
// supported:
//
//   - Explicit tids: call Enqueue/Dequeue with a tid you manage yourself
//     (e.g. a worker-pool index).
//   - Handles: call Handle() to lease a tid from the queue's built-in
//     wait-free renaming namespace — the right choice for dynamically
//     created goroutines. Release the handle when the goroutine stops
//     using the queue.
//
// # Choosing a variant
//
// Use the default (both optimizations, matching the paper's best
// performer "opt WF (1+2)") unless you are studying the algorithm.
// VariantBase is the paper's §3.2 reference version; the single-
// optimization variants exist for the Figure 9 ablation.
//
// When raw throughput at low-to-moderate contention matters more than
// the helping protocol's bookkeeping, select Fast (via WithFastPath):
// each operation first runs a bounded number of direct lock-free
// attempts — the Michael–Scott shape, no phase or descriptor — and only
// publishes a descriptor and enters the helping machinery after
// exhausting its patience. Every operation still completes in a bounded
// number of steps, so wait-freedom is preserved; the fast attempts just
// make the uncontended case as cheap as the lock-free baseline.
//
// # Quick start
//
//	q := wfq.New[string](8) // up to 8 concurrent threads
//	h, _ := q.Handle()
//	defer h.Release()
//	h.Enqueue("job-1")
//	if v, ok := h.Dequeue(); ok {
//		fmt.Println(v)
//	}
package wfq

import (
	"wfq/internal/core"
	"wfq/internal/ring"
	"wfq/internal/sharded"
	"wfq/internal/tid"
	"wfq/internal/waiter"
)

// Variant selects the algorithm flavour; see the package documentation.
type Variant = core.Variant

// Algorithm variants (the series names of the paper's figures).
const (
	// Base is the paper's §3.2 algorithm: phase by state-array scan,
	// help-everyone traversal.
	Base Variant = core.VariantBase
	// Opt1 helps at most one other thread per operation (§3.3 opt 1).
	Opt1 Variant = core.VariantOpt1
	// Opt2 uses a CAS-based shared phase counter (§3.3 opt 2).
	Opt2 Variant = core.VariantOpt2
	// Opt12 combines both optimizations (the default and the paper's
	// recommended configuration).
	Opt12 Variant = core.VariantOpt12
	// Fast is the fast-path/slow-path engine: bounded lock-free
	// attempts, then the Opt12 helping machinery. Usually selected via
	// WithFastPath rather than WithVariant.
	Fast Variant = core.VariantFast
)

// Option configures a queue.
type Option = core.Option

// Re-exported configuration options; see the internal/core documentation
// for semantics.
var (
	// WithVariant selects an algorithm variant.
	WithVariant = core.WithVariant
	// WithHelpChunk sets how many state entries an Opt1/Opt12
	// operation scans for helping candidates (default 1).
	WithHelpChunk = core.WithHelpChunk
	// WithRandomHelping switches Opt1/Opt12 helping-candidate choice
	// from cyclic to random (probabilistic wait-freedom, §3.3).
	WithRandomHelping = core.WithRandomHelping
	// WithClearOnExit makes finished operations drop their node
	// references so completed threads pin no queue memory.
	WithClearOnExit = core.WithClearOnExit
	// WithDescriptorCache reuses descriptor allocations whose
	// publication CAS failed.
	WithDescriptorCache = core.WithDescriptorCache
	// WithPhaseProvider overrides the Opt2/Opt12 phase source.
	WithPhaseProvider = core.WithPhaseProvider
	// WithValidationChecks skips already-satisfied completion CASes
	// (§3.3 performance-tuning enhancement).
	WithValidationChecks = core.WithValidationChecks
	// WithMetrics attaches internal event counters (help traffic, CAS
	// failures); read them via the core Queue's Metrics method when
	// constructing through internal/core directly.
	WithMetrics = core.WithMetrics
	// WithFastPath selects the Fast variant: up to patience direct
	// lock-free attempts per operation before falling back to the
	// wait-free helping protocol (patience <= 0 selects the default).
	WithFastPath = core.WithFastPath
	// WithArena block-allocates queue nodes from per-thread arena
	// segments of blockSize nodes (<= 0 selects the default, 64), so
	// steady-state allocations drop to roughly one per blockSize
	// enqueues. Nodes are never reused on the GC variant, only batched;
	// see internal/pool for the ownership rules.
	WithArena = core.WithArena
	// WithShards(n) puts a wait-free ticket dispatcher in front of n
	// independent shards, each running the configured variant. Ordering
	// weakens from one FIFO to per-shard FIFO (ticket residue classes),
	// and Dequeue's empty result becomes per-ticket: n consecutive empty
	// results with no active producer prove the queue empty. In exchange
	// the hot head/tail words and the helping state-array are split n
	// ways. See the Sharding section of README.md and ALGORITHM.md.
	WithShards = core.WithShards
	// WithRing(segSize) replaces the linked-node engine with the
	// ring-segment storage backend (internal/ring): elements live in
	// contiguous slot segments claimed by one fetch-and-add per
	// operation, segments are chained only at the boundary, and retired
	// segments recycle through a bounded free list — zero steady-state
	// allocations and cache-sequential access. segSize <= 0 selects the
	// default (1024 slots). Ordering stays a single FIFO; progress is
	// wait-free: after a bounded number of fast-path attempts an
	// operation publishes a helping record and peers finish it from its
	// ticket — see ALGORITHM.md, "Wait-free ring helping". Composes
	// with WithShards (ring shards behind the ticket dispatcher) and
	// with WithFastPath, whose patience bounds the ring fast path too;
	// the remaining engine options (WithVariant, WithArena, ...) do not
	// apply to the ring engine and are ignored.
	WithRing = core.WithRing
)

// backend is the queue engine behind the public API: either a single
// core queue or the sharded frontend.
type backend[T any] interface {
	Enqueue(tid int, v T)
	Dequeue(tid int) (v T, ok bool)
	Len() int
	NumThreads() int
}

// Queue is a wait-free MPMC FIFO queue of T. Create one with New.
//
// With WithShards(n), n > 1, the queue runs n independent shards behind
// a wait-free ticket dispatcher; ordering is then FIFO per shard rather
// than globally, and Dequeue's empty result is per-ticket — see
// WithShards.
type Queue[T any] struct {
	q   backend[T]
	sh  *sharded.Queue[T] // non-nil iff the backend is sharded
	reg *tid.Registry

	// Blocking/lifecycle plumbing (see blocking.go): the gate is the
	// queue's waiter set + close state (the sharded frontend's own gate
	// when sharded, so its drain mask sees the close); src is the
	// waiter.Source view of the backend; cycle is the residue-coverage
	// bound of the park-loop recheck (Shards() probes on a sharded
	// queue, 1 otherwise).
	g     *waiter.Gate
	src   waiter.BatchSource[T]
	cycle int
}

// New creates a queue supporting up to maxThreads concurrently operating
// threads, using the Opt12 variant unless overridden by options.
// maxThreads is an upper bound, not an exact count; it also sizes the
// Handle namespace.
func New[T any](maxThreads int, opts ...Option) *Queue[T] {
	all := append([]Option{WithVariant(Opt12)}, opts...)
	q := &Queue[T]{reg: tid.NewRegistry(maxThreads)}
	segSize, useRing := core.RingOf(all...)
	// WithFastPath's patience carries over to the ring backend: it bounds
	// the ring's one-FAA fast path the same way it bounds the linked
	// engine's lock-free attempts, before the helping slow path engages.
	var ringOpts []ring.Option
	if p, ok := core.FastPathOf(all...); ok {
		ringOpts = append(ringOpts, ring.WithPatience(p))
	}
	if n := core.ShardsOf(all...); n > 1 {
		if useRing {
			shards := make([]sharded.Shard[T], n)
			for i := range shards {
				shards[i] = ring.New[T](maxThreads, segSize, ringOpts...)
			}
			q.sh = sharded.NewOf[T](maxThreads, shards)
		} else {
			q.sh = sharded.New[T](maxThreads, n, all...)
		}
		q.q = q.sh
		q.g = q.sh.Gate()
		q.src = q.sh
		q.cycle = q.sh.Shards()
	} else if useRing {
		q.q = ring.New[T](maxThreads, segSize, ringOpts...)
		q.g = waiter.NewGate(maxThreads)
		q.src = singleSource[T]{q: q.q}
		q.cycle = 1
	} else {
		q.q = core.New[T](maxThreads, all...)
		q.g = waiter.NewGate(maxThreads)
		q.src = singleSource[T]{q: q.q}
		q.cycle = 1
	}
	return q
}

// MaxThreads reports the queue's concurrency bound.
func (q *Queue[T]) MaxThreads() int { return q.q.NumThreads() }

// MaxObservedPhase reports the largest phase number currently published
// in the backend's helping state (max across shards when sharded). It
// exists for the chaos watchdog's §3.3 wrap guard — see phase.MaxSafe —
// and for monitoring; values are racy snapshots.
func (q *Queue[T]) MaxObservedPhase() int64 {
	if p, ok := q.q.(interface{ MaxObservedPhase() int64 }); ok {
		return p.MaxObservedPhase()
	}
	return 0
}

// Shards reports the shard count (1 when unsharded).
func (q *Queue[T]) Shards() int {
	if q.sh != nil {
		return q.sh.Shards()
	}
	return 1
}

// Enqueue inserts v at the tail on behalf of thread tid. tid must be in
// [0, MaxThreads()) and must not be used concurrently by another
// goroutine (use Handle for automatic management). Enqueue on a closed
// queue panics, like a send on a closed channel; use TryEnqueue when
// racing Close is expected.
func (q *Queue[T]) Enqueue(tid int, v T) {
	if err := q.TryEnqueue(tid, v); err != nil {
		panic("wfq: Enqueue on closed queue")
	}
}

// Dequeue removes and returns the oldest element on behalf of thread tid.
// ok is false when the queue was empty at the operation's linearization
// point. On a sharded queue "empty" refers to the shard the operation's
// ticket dispatched it to; see WithShards.
func (q *Queue[T]) Dequeue(tid int) (v T, ok bool) { return q.q.Dequeue(tid) }

// batcher is the optional first-class batch contract of a backend.
type batcher[T any] interface {
	EnqueueBatch(tid int, vs []T)
	DequeueBatch(tid int, dst []T) int
}

// EnqueueBatch inserts vs in order on behalf of thread tid, atomically
// with respect to position: unsharded, the values are pre-linked into a
// node chain and enter the queue with ONE linearizing CAS, so they
// occupy consecutive FIFO positions with nothing interleaved — and the
// whole batch costs one descriptor publish at most. On a sharded queue
// the batch costs one dispatch ticket fetch-and-add, fans out round-
// robin over consecutive tickets, and each shard's portion is appended
// as one chain; contiguity then holds within each shard's FIFO.
// Like Enqueue, it panics on a closed queue; use TryEnqueueBatch when
// racing Close is expected.
func (q *Queue[T]) EnqueueBatch(tid int, vs []T) {
	if err := q.TryEnqueueBatch(tid, vs); err != nil {
		panic("wfq: EnqueueBatch on closed queue")
	}
}

// enqueueBatch is the untracked batch append (see TryEnqueueBatch).
func (q *Queue[T]) enqueueBatch(tid int, vs []T) {
	if q.sh != nil {
		q.sh.EnqueueBatch(tid, vs)
		return
	}
	if b, ok := q.q.(batcher[T]); ok {
		b.EnqueueBatch(tid, vs)
		return
	}
	for _, v := range vs {
		q.q.Enqueue(tid, v)
	}
}

// DequeueBatch removes up to len(dst) elements into dst, returning how
// many were obtained. Unsharded, it is a fast-path multi-claim plus
// single dequeues — each removal linearizes individually, the batch form
// just amortizes the per-call setup; it stops early only on an empty
// observation. On a sharded queue the batch claims len(dst) consecutive
// dispatch tickets with one fetch-and-add — probing len(dst) consecutive
// shards, so a batch of Shards() slots samples every shard once.
func (q *Queue[T]) DequeueBatch(tid int, dst []T) int {
	if q.sh != nil {
		return q.sh.DequeueBatch(tid, dst)
	}
	if b, ok := q.q.(batcher[T]); ok {
		return b.DequeueBatch(tid, dst)
	}
	n := 0
	for n < len(dst) {
		v, ok := q.q.Dequeue(tid)
		if !ok {
			break
		}
		dst[n] = v
		n++
	}
	return n
}

// ShardDepths reports a racy snapshot of each shard's element count; a
// single-element slice when unsharded. Monitoring and tests only.
func (q *Queue[T]) ShardDepths() []int {
	if q.sh != nil {
		return q.sh.ShardDepths()
	}
	return []int{q.q.Len()}
}

// Len reports a racy snapshot of the number of queued elements. O(n);
// intended for monitoring and tests, not synchronization.
func (q *Queue[T]) Len() int { return q.q.Len() }

// Handle leases a thread id from the queue's renaming namespace and
// returns a Handle bound to this queue. It fails with tid.ErrExhausted
// when maxThreads goroutines concurrently hold handles.
func (q *Queue[T]) Handle() (*Handle[T], error) {
	h, err := q.reg.Acquire()
	if err != nil {
		return nil, err
	}
	return &Handle[T]{q: q, h: h}, nil
}

// Handle is a leased per-goroutine identity on a Queue. A Handle must not
// be shared between goroutines that operate concurrently; Release it when
// done so the id returns to the namespace.
type Handle[T any] struct {
	q *Queue[T]
	h tid.Handle
}

// TID exposes the underlying thread id (useful for logging/debugging).
func (h *Handle[T]) TID() int { return h.h.TID() }

// Enqueue inserts v at the tail.
func (h *Handle[T]) Enqueue(v T) { h.q.Enqueue(h.h.TID(), v) }

// Dequeue removes and returns the oldest element; ok is false when the
// queue was empty.
func (h *Handle[T]) Dequeue() (v T, ok bool) { return h.q.Dequeue(h.h.TID()) }

// EnqueueBatch inserts vs in order; see Queue.EnqueueBatch.
func (h *Handle[T]) EnqueueBatch(vs []T) { h.q.EnqueueBatch(h.h.TID(), vs) }

// DequeueBatch removes up to len(dst) elements into dst; see
// Queue.DequeueBatch.
func (h *Handle[T]) DequeueBatch(dst []T) int { return h.q.DequeueBatch(h.h.TID(), dst) }

// Release returns the leased id. The Handle must not be used afterwards.
// The lease's generation is retired before the id re-enters the
// namespace and the queue's waiter set is then broadcast, so a waiter
// still parked under this lease (a DequeueCtx in flight on another
// goroutine — itself a misuse, but one this layer contains) wakes,
// fails its liveness check, and returns ErrReleased instead of
// consuming wakeups addressed to the id's next holder.
func (h *Handle[T]) Release() {
	h.h.Release()
	h.q.g.Broadcast()
}

// HPQueue is the hazard-pointer variant of the queue (§3.4 of the paper):
// nodes are recycled through per-thread pools instead of being left to
// the garbage collector, demonstrating — and testing — the discipline a
// runtime without GC would need. For ordinary Go use, prefer Queue.
type HPQueue[T any] struct {
	q   *core.HPQueue[T]
	reg *tid.Registry
	g   *waiter.Gate
	src waiter.BatchSource[T]
}

// NewHP creates a hazard-pointer-backed queue for up to maxThreads
// threads. poolCap bounds each thread's node free list (0 selects the
// default). Of the options, WithFastPath and WithArena are honoured.
func NewHP[T any](maxThreads, poolCap int, opts ...Option) *HPQueue[T] {
	q := &HPQueue[T]{
		q:   core.NewHP[T](maxThreads, poolCap, 0, opts...),
		reg: tid.NewRegistry(maxThreads),
		g:   waiter.NewGate(maxThreads),
	}
	q.src = singleSource[T]{q: q.q}
	return q
}

// MaxThreads reports the queue's concurrency bound.
func (q *HPQueue[T]) MaxThreads() int { return q.q.NumThreads() }

// Enqueue inserts v at the tail on behalf of thread tid.
func (q *HPQueue[T]) Enqueue(tid int, v T) { q.q.Enqueue(tid, v) }

// Dequeue removes and returns the oldest element on behalf of thread tid.
func (q *HPQueue[T]) Dequeue(tid int) (v T, ok bool) { return q.q.Dequeue(tid) }

// EnqueueBatch inserts vs in order as one chained append; see
// Queue.EnqueueBatch for the contiguity contract.
func (q *HPQueue[T]) EnqueueBatch(tid int, vs []T) { q.q.EnqueueBatch(tid, vs) }

// DequeueBatch removes up to len(dst) elements into dst; see
// Queue.DequeueBatch.
func (q *HPQueue[T]) DequeueBatch(tid int, dst []T) int { return q.q.DequeueBatch(tid, dst) }

// PoolStats reports node reuse counters (hits, allocator misses, drops).
func (q *HPQueue[T]) PoolStats() (hits, misses, drops int64) { return q.q.PoolStats() }
