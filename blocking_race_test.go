package wfq

import (
	"context"
	"errors"
	"testing"
	"time"

	"wfq/internal/yield"
)

// stallAtPoint parks the first goroutine to reach yield point p,
// reporting arrival on arrived and resuming on release.
func stallAtPoint(p yield.Point) (arrived, release chan struct{}, undo func()) {
	arrived = make(chan struct{})
	release = make(chan struct{})
	fired := false
	prev := yield.Set(func(pt yield.Point, _, _ int) {
		if pt == p && !fired {
			fired = true
			arrived <- struct{}{}
			<-release
		}
	})
	return arrived, release, func() { yield.Set(prev) }
}

// TestEnqueueNotifyRacesChainSwing choreographs the interleaving where
// an enqueue-side notify lands while a batch appender's chain is
// published but its tail swing is still in flight:
//
//	consumer parks → A appends [1 2 3] with the Line-74 chain CAS and
//	stalls before its first tail swing (tail lags at the pre-chain
//	node) → B enqueues 99 and notifies.
//
// The woken consumer must drain 1,2,3 through the lagging-tail state
// (helping the swing itself) and then 99 — chain atomicity and FIFO
// order survive the notify racing the swing. A then completes against
// the helped tail, and Close observes a quiet queue.
func TestEnqueueNotifyRacesChainSwing(t *testing.T) {
	const producerA, consumer, producerB = 0, 1, 2
	q := New[int64](4, WithFastPath(8))

	vals := make(chan int64, 4)
	cdone := make(chan error, 1)
	go func() {
		for {
			v, err := q.DequeueCtx(context.Background(), consumer)
			if err != nil {
				cdone <- err
				return
			}
			vals <- v
		}
	}()
	awaitWaiters(t, q.g.EC(), 1)

	arrived, release, undo := stallAtPoint(yield.KPChainBeforeSwing)
	defer undo()

	adone := make(chan error, 1)
	go func() { adone <- q.TryEnqueueBatch(producerA, []int64{1, 2, 3}) }()
	<-arrived // chain is in the list, tail still at the pre-chain node

	if err := q.TryEnqueue(producerB, 99); err != nil {
		t.Fatalf("B enqueue: %v", err)
	}

	// The notify alone must deliver all four elements in FIFO order —
	// A is still stalled mid-swing and cannot help.
	for i, want := range []int64{1, 2, 3, 99} {
		select {
		case v := <-vals:
			if v != want {
				t.Fatalf("delivery %d: got %d, want %d", i, v, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("delivery %d (want %d) never arrived: notify lost across the chain swing", i, want)
		}
	}

	close(release)
	select {
	case err := <-adone:
		if err != nil {
			t.Fatalf("A: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("A never completed its swing against the helped tail")
	}

	if err := q.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-cdone:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("consumer exit: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not terminate the consumer")
	}
}
